// Stress/property tests: heavy equal-timestamp groups through the matcher's
// group-closure BFS, STP minimal-network tightness, and the miner ablation
// equivalence in the presence of §6 type constraints.

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/constraint/stp.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

TEST(EqualTimestampStressTest, GroupClosureAgreesWithOracle) {
  // Sequences dominated by equal timestamps: the §3 occurrence definition
  // is order-free within a group, and the matcher must agree with the
  // oracle for every structure.
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  const Granularity* three = toy.AddUniform("three", 3);
  Rng rng(777);
  const int kTypeCount = 3;
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int n = static_cast<int>(rng.Uniform(2, 4));
    EventStructure s;
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    for (int v = 1; v < n; ++v) {
      std::int64_t lo = rng.Uniform(0, 1);
      ASSERT_TRUE(s.AddConstraint(
                       static_cast<int>(rng.Uniform(0, v - 1)), v,
                       Tcg::Of(lo, lo + rng.Uniform(0, 2),
                               rng.Bernoulli(0.5) ? unit : three))
                      .ok());
    }
    auto built = BuildTagForStructure(s);
    ASSERT_TRUE(built.ok());
    TagMatcher matcher(&built->tag);
    std::vector<EventTypeId> phi;
    for (int v = 0; v < n; ++v) {
      phi.push_back(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)));
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypeCount);
    // Very few distinct timestamps => large equal-time groups.
    EventSequence seq;
    for (int i = 0; i < 10; ++i) {
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)),
              rng.Uniform(0, 3) * 2);
    }
    bool tag_says = matcher.Accepts(seq.View(), symbols);
    bool oracle_says = OccursBruteForce(s, phi, seq.View());
    ASSERT_EQ(tag_says, oracle_says) << s.ToString() << " trial " << trial;
    tag_says ? ++accepted : ++rejected;
  }
  EXPECT_GT(accepted, 20);
  EXPECT_GT(rejected, 20);
}

TEST(EqualTimestampStressTest, LargeSingleGroup) {
  // One group of 60 simultaneous events, a 3-variable chain with [0,0]
  // constraints: the closure must find the occurrence without blowing up.
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure s;
  for (int v = 0; v < 3; ++v) s.AddVariable("X" + std::to_string(v));
  ASSERT_TRUE(s.AddConstraint(0, 1, Tcg::Same(unit)).ok());
  ASSERT_TRUE(s.AddConstraint(1, 2, Tcg::Same(unit)).ok());
  auto built = BuildTagForStructure(s);
  ASSERT_TRUE(built.ok());
  TagMatcher matcher(&built->tag);
  EventSequence seq;
  for (int i = 0; i < 60; ++i) seq.Add(i % 3, 42);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2}, 3);
  MatchStats stats;
  EXPECT_TRUE(matcher.Accepts(seq.View(), symbols, {}, &stats));
  EXPECT_FALSE(stats.budget_exhausted);
  // Only counts per type matter within a group, so configurations stay
  // tiny despite 60 events.
  EXPECT_LT(stats.configurations, 500u);
}

TEST(StpTightnessTest, MinimalBoundsAreAchieved) {
  // Property: after propagation, every finite bound d[i][j] is achieved by
  // some integer solution (the DMP91 minimal-network guarantee), checked by
  // brute force on small consistent networks.
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 3;
    StpNetwork net(n);
    for (int e = 0; e < 3; ++e) {
      int x = static_cast<int>(rng.Uniform(0, n - 1));
      int y = static_cast<int>(rng.Uniform(0, n - 1));
      if (x == y) continue;
      std::int64_t lo = rng.Uniform(-3, 2);
      net.Constrain(x, y, Bounds::Of(lo, lo + rng.Uniform(0, 3)));
    }
    if (!net.PropagateToMinimal()) continue;
    ++checked;
    // Enumerate all solutions with values in [-8, 8] (anchor x0 = 0 since
    // only differences matter).
    const std::int64_t kLo = -8, kHi = 8;
    std::vector<std::vector<std::int64_t>> solutions;
    for (std::int64_t b = kLo; b <= kHi; ++b) {
      for (std::int64_t c = kLo; c <= kHi; ++c) {
        std::vector<std::int64_t> vals = {0, b, c};
        bool ok = true;
        for (int i = 0; i < n && ok; ++i) {
          for (int j = 0; j < n && ok; ++j) {
            if (i == j) continue;
            std::int64_t d = net.Distance(i, j);
            if (d < kInfinity && vals[j] - vals[i] > d) ok = false;
          }
        }
        if (ok) solutions.push_back(std::move(vals));
      }
    }
    ASSERT_FALSE(solutions.empty());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        std::int64_t d = net.Distance(i, j);
        if (d >= kInfinity || d >= 6) continue;  // keep inside the box
        bool achieved = false;
        for (const auto& vals : solutions) {
          if (vals[j] - vals[i] == d) achieved = true;
        }
        EXPECT_TRUE(achieved) << "d[" << i << "][" << j << "]=" << d
                              << " trial " << trial;
      }
    }
  }
  EXPECT_GT(checked, 40);
}

TEST(AblationWithTypeConstraintsTest, NaiveStillAgrees) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  Rng rng(64);
  for (int trial = 0; trial < 15; ++trial) {
    EventStructure s;
    for (int v = 0; v < 3; ++v) s.AddVariable("X" + std::to_string(v));
    ASSERT_TRUE(
        s.AddConstraint(0, 1, Tcg::Of(0, rng.Uniform(1, 4), unit)).ok());
    ASSERT_TRUE(
        s.AddConstraint(1, 2, Tcg::Of(0, rng.Uniform(1, 4), unit)).ok());
    EventSequence seq;
    TimePoint t = 0;
    for (int i = 0; i < 50; ++i) {
      t += rng.Uniform(0, 2);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, 2)), t);
    }
    DiscoveryProblem problem;
    problem.structure = &s;
    problem.min_confidence = 0.2;
    problem.reference_type = 0;
    problem.type_constraints = {
        {rng.Bernoulli(0.5) ? TypeConstraint::Kind::kSameType
                            : TypeConstraint::Kind::kDifferentType,
         1, 2}};
    Miner naive(&toy, MinerOptions::Naive());
    Miner optimized(&toy);
    auto a = naive.Mine(problem, seq);
    auto b = optimized.Mine(problem, seq);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->solutions.size(), b->solutions.size());
    for (std::size_t i = 0; i < a->solutions.size(); ++i) {
      EXPECT_EQ(a->solutions[i].assignment, b->solutions[i].assignment);
      EXPECT_EQ(a->solutions[i].matched_roots,
                b->solutions[i].matched_roots);
      // The constraint actually holds.
      EXPECT_TRUE(
          problem.type_constraints[0].SatisfiedBy(a->solutions[i].assignment));
    }
  }
}

}  // namespace
}  // namespace granmine
