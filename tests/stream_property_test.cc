// Property tests for the streaming subsystem: any arrival permutation the
// out-of-order tolerance admits yields the same snapshot bytes; late events
// produce a deterministic Status without perturbing the stream; duplicate
// (type, time) pairs keep multiset semantics. Randomness is a fixed-seed
// std::mt19937_64 (fully specified by the standard), so every run checks
// the same permutations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

std::string FormatReport(const MiningReport& report) {
  std::string out;
  char buffer[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out += buffer;
  };
  append("roots=%zu events=%zu/%zu cand=%llu/%llu runs=%llu configs=%llu\n",
         report.total_roots, report.events_before,
         report.events_after_reduction,
         static_cast<unsigned long long>(report.candidates_before),
         static_cast<unsigned long long>(report.candidates_after_screening),
         static_cast<unsigned long long>(report.tag_runs),
         static_cast<unsigned long long>(report.matcher_configurations));
  const MiningCompleteness& c = report.completeness;
  append("complete=%d confirmed=%llu refuted=%llu unknown=%llu "
         "not_evaluated=%llu\n",
         c.complete ? 1 : 0, static_cast<unsigned long long>(c.confirmed),
         static_cast<unsigned long long>(c.refuted),
         static_cast<unsigned long long>(c.unknown),
         static_cast<unsigned long long>(c.not_evaluated));
  for (const DiscoveredType& solution : report.solutions) {
    out += "sol";
    for (EventTypeId type : solution.assignment) {
      append(" %d", type);
    }
    append(" matched=%zu freq=%.17g\n", solution.matched_roots,
           solution.frequency);
  }
  return out;
}

// The smallest tolerance that admits `arrivals` without a late rejection:
// the maximum regression below the running time maximum.
std::int64_t RequiredTolerance(std::span<const Event> arrivals) {
  std::int64_t tolerance = 0;
  TimePoint max_seen = arrivals.front().time;
  for (const Event& event : arrivals) {
    max_seen = std::max(max_seen, event.time);
    tolerance = std::max(tolerance, max_seen - event.time);
  }
  return tolerance;
}

// Bounded permutation: repeatedly emit a uniformly random element from the
// next `window` undelivered events. Time regression is bounded by the time
// span inside the window, so the required tolerance stays small.
std::vector<Event> WindowShuffle(std::span<const Event> in_order,
                                 std::size_t window, std::mt19937_64* rng) {
  std::vector<Event> pool(in_order.begin(), in_order.end());
  std::vector<Event> out;
  out.reserve(pool.size());
  std::size_t head = 0;
  while (head < pool.size()) {
    const std::size_t limit = std::min(pool.size(), head + window);
    std::uniform_int_distribution<std::size_t> pick(head, limit - 1);
    const std::size_t chosen = pick(*rng);
    out.push_back(pool[chosen]);
    // Keep the pool's relative order: shift [head, chosen) right by one.
    for (std::size_t i = chosen; i > head; --i) pool[i] = pool[i - 1];
    ++head;
  }
  return out;
}

class StreamPropertyTest : public testing::Test {
 protected:
  static constexpr int kTypeCount = 5;

  StreamPropertyTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 6, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(1, 6, unit_)).ok());
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    problem_.allowed.assign(3, {});
    problem_.allowed[1] = {0, 1, 2, 3, 4};
    problem_.allowed[2] = {0, 1, 2, 3, 4};
  }

  // Deterministic workload with equal-timestamp groups and exact duplicate
  // (type, time) pairs (the `% 3 == 0` branch re-emits the previous event).
  std::vector<Event> MakeEvents(std::size_t count, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<Event> events;
    TimePoint t = 1;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t roll = rng();
      t += static_cast<TimePoint>(roll % 2);
      if (roll % 3 == 0 && !events.empty()) {
        events.push_back(events.back());
        events.back().time = t;
      } else {
        events.push_back(
            Event{static_cast<EventTypeId>((roll >> 7) % kTypeCount), t});
      }
    }
    return events;
  }

  std::string SnapshotOf(std::span<const Event> arrivals,
                         std::int64_t tolerance, int threads = 1) {
    OnlineMinerOptions options;
    options.tolerance = tolerance;
    options.num_threads = threads;
    Result<OnlineMiner> miner = OnlineMiner::Create(&toy_, problem_, options);
    EXPECT_TRUE(miner.ok()) << miner.status();
    for (const Event& event : arrivals) {
      Status status = miner->Ingest(event);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    Result<MiningReport> report = miner->Snapshot();
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? FormatReport(*report) : std::string();
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  DiscoveryProblem problem_;
};

// Property: every arrival permutation the tolerance admits produces the
// exact snapshot bytes of the in-order stream.
TEST_F(StreamPropertyTest, AdmissiblePermutationsYieldIdenticalSnapshots) {
  const std::vector<Event> in_order = MakeEvents(40, 0xfeedULL);
  const std::string want = SnapshotOf(in_order, /*tolerance=*/0);
  std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t window = 2 + static_cast<std::size_t>(trial % 7);
    std::vector<Event> arrivals = WindowShuffle(in_order, window, &rng);
    ASSERT_TRUE(std::is_permutation(arrivals.begin(), arrivals.end(),
                                    in_order.begin(),
                                    [](const Event& a, const Event& b) {
                                      return a.type == b.type &&
                                             a.time == b.time;
                                    }));
    const std::int64_t tolerance = RequiredTolerance(arrivals);
    const int threads = 1 + trial % 3;
    ASSERT_EQ(want, SnapshotOf(arrivals, tolerance, threads))
        << "trial " << trial << " window " << window << " tolerance "
        << tolerance << " threads " << threads;
  }
}

// Property: a rejected late event leaves the stream exactly as it was —
// same deterministic Status every time, same snapshot as never sending it.
TEST_F(StreamPropertyTest, LateEventsAreDeterministicallyRejectedNoOps) {
  const std::vector<Event> in_order = MakeEvents(30, 0xabcdULL);
  const std::string want = SnapshotOf(in_order, /*tolerance=*/1);

  OnlineMinerOptions options;
  options.tolerance = 1;
  Result<OnlineMiner> miner = OnlineMiner::Create(&toy_, problem_, options);
  ASSERT_TRUE(miner.ok());
  std::string first_message;
  std::uint64_t rejected = 0;
  for (const Event& event : in_order) {
    ASSERT_TRUE(miner->Ingest(event).ok());
    // Probe below the watermark after every arrival that established one.
    if (miner->watermark() <= in_order.front().time) continue;
    Status late = miner->Ingest(2, miner->watermark() - 1);
    ASSERT_FALSE(late.ok());
    ++rejected;
    if (first_message.empty()) {
      first_message = late.ToString();
    }
  }
  ASSERT_GT(rejected, 0u);
  EXPECT_EQ(miner->late_events(), rejected);
  // Identical probe → identical message (stable across repeats).
  Status again = miner->Ingest(2, in_order.front().time);
  ASSERT_FALSE(again.ok());
  Status repeat = miner->Ingest(2, in_order.front().time);
  EXPECT_EQ(again.ToString(), repeat.ToString());
  Result<MiningReport> report = miner->Snapshot();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(want, FormatReport(*report));
}

// Property: duplicate (type, time) events are kept as a multiset — each
// copy counts — and any admissible arrival order of the duplicates agrees
// with the batch miner over the canonical sequence.
TEST_F(StreamPropertyTest, DuplicateTimestampsKeepMultisetSemantics) {
  std::vector<Event> events;
  for (TimePoint t = 1; t <= 12; ++t) {
    events.push_back(Event{0, t});          // a root every tick
    events.push_back(Event{1, t});
    events.push_back(Event{1, t});          // exact duplicate
    if (t % 2 == 0) events.push_back(Event{2, t});
  }
  std::vector<Event> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.type < b.type;
                   });
  OnlineMinerOptions options;
  Miner batch(&toy_, options.BatchEquivalent());
  Result<MiningReport> want = batch.Mine(problem_, EventSequence(sorted));
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(want->total_roots, 12u);

  std::mt19937_64 rng(0x5bd1e995ULL);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Event> arrivals = WindowShuffle(events, 6, &rng);
    const std::int64_t tolerance = RequiredTolerance(arrivals);
    ASSERT_EQ(FormatReport(*want),
              SnapshotOf(arrivals, tolerance, 1 + trial % 2))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace granmine
