// End-to-end reproduction of the paper's narrative on the real second-based
// calendar: Example 1 (the complex event type and its TAG), Example 2 (the
// discovery problem), the §5.1 induced screening example, and a stronger
// TAG-vs-oracle differential over realistic granularities.

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/constraint/propagation.h"
#include "granmine/constraint/substructure.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

class PaperNarrativeTest : public testing::Test {
 protected:
  PaperNarrativeTest() : system_(GranularitySystem::Gregorian()) {}
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(PaperNarrativeTest, Example1FullPipeline) {
  // Build the workload, the structure, the TAG; verify the paper's claims
  // hold together: consistency, p = 2 chains, acceptance of exactly the
  // anchored occurrences the oracle certifies.
  StockWorkloadOptions options;
  options.trading_days = 40;
  options.plant_probability = 0.5;
  options.noise_events_per_day = 2.0;
  options.seed = 314;
  Workload workload = MakeStockWorkload(*system_, options);

  auto structure = BuildFigure1a(*system_);
  ASSERT_TRUE(structure.ok());
  ConstraintPropagator propagator(&system_->tables(), &system_->coverage());
  auto propagation = propagator.Propagate(*structure);
  ASSERT_TRUE(propagation.ok());
  ASSERT_TRUE(propagation->consistent);

  auto built = BuildTagForStructure(*structure);
  ASSERT_TRUE(built.ok());
  ASSERT_EQ(built->chains.size(), 2u);
  TagMatcher matcher(&built->tag);

  std::vector<EventTypeId> phi = {
      *workload.registry.Find("IBM-rise"),
      *workload.registry.Find("IBM-earnings-report"),
      *workload.registry.Find("HP-rise"),
      *workload.registry.Find("IBM-fall")};
  SymbolMap symbols = SymbolMap::FromAssignment(
      phi, workload.registry.size());

  std::size_t tag_matches = 0, oracle_matches = 0;
  for (std::size_t at : workload.sequence.OccurrencesOf(phi[0])) {
    MatchOptions anchored;
    anchored.anchored = true;
    if (matcher.Accepts(workload.sequence.SuffixFrom(at), symbols,
                        anchored)) {
      ++tag_matches;
    }
    OracleOptions oracle_options;
    oracle_options.anchored_root_index = 0;
    if (OccursBruteForce(*structure, phi, workload.sequence.SuffixFrom(at),
                         oracle_options)) {
      ++oracle_matches;
    }
  }
  EXPECT_EQ(tag_matches, oracle_matches);
  EXPECT_GE(tag_matches, workload.planted);
}

TEST_F(PaperNarrativeTest, InducedScreeningMatchesPaperExample) {
  // §5.1: the induced problem on {X0, X3} identifies a window per
  // IBM-rise; candidate X3 types outside it are screened. Validate that
  // screening alone (k=1) never removes the true solution's types.
  StockWorkloadOptions options;
  options.trading_days = 60;
  options.plant_probability = 0.8;
  options.noise_events_per_day = 2.0;
  options.noise_ticker_count = 3;
  options.seed = 2718;
  Workload workload = MakeStockWorkload(*system_, options);

  auto structure = BuildFigure1a(*system_);
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");

  MinerOptions screened;
  screened.screening_depth = 2;
  Miner optimized(system_.get(), screened);
  Miner naive(system_.get(), MinerOptions::Naive());
  auto a = optimized.Mine(problem, workload.sequence);
  auto b = naive.Mine(problem, workload.sequence);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->solutions.size(), b->solutions.size());
  for (std::size_t i = 0; i < a->solutions.size(); ++i) {
    EXPECT_EQ(a->solutions[i].assignment, b->solutions[i].assignment);
    EXPECT_EQ(a->solutions[i].matched_roots, b->solutions[i].matched_roots);
  }
  // And screening genuinely pruned the space.
  EXPECT_LT(a->candidates_after_screening, b->candidates_before);
}

TEST_F(PaperNarrativeTest, SequenceReductionDropsWeekendNoise) {
  // Step 2 on the real calendar: weekend events cannot bind to variables
  // that are all b-day/hour/week-constrained... weekend noise with a type
  // no variable may take is dropped; outcomes unchanged.
  StockWorkloadOptions options;
  options.trading_days = 30;
  options.plant_probability = 1.0;
  options.noise_events_per_day = 0.0;
  Workload workload = MakeStockWorkload(*system_, options);
  // Inject weekend noise of a foreign type: Sat 1970-01-03 etc.
  EventTypeId weekend_noise = workload.registry.Intern("weekend-noise");
  for (int weekend = 0; weekend < 8; ++weekend) {
    TimePoint saturday = (2 + 7 * weekend) * kSecondsPerDay + 12 * 3600;
    workload.sequence.Add(weekend_noise, saturday);
  }

  auto structure = BuildFigure1a(*system_);
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.5;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[1] = {*workload.registry.Find("IBM-earnings-report")};
  problem.allowed[2] = {*workload.registry.Find("HP-rise")};
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  Miner miner(system_.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->events_after_reduction, report->events_before);
  ASSERT_EQ(report->solutions.size(), 1u);
  EXPECT_EQ(report->solutions[0].matched_roots, workload.planted);
}

TEST_F(PaperNarrativeTest, RealCalendarDifferential) {
  // Random structures over b-day / hour / day / week with random small
  // sequences on the seconds calendar: TAG == oracle. This is the
  // Theorem-3 differential on the *real* granularities (the toy version
  // lives in tag_match_test.cc).
  Rng rng(5150);
  const Granularity* types[] = {system_->Find("b-day"), system_->Find("hour"),
                                system_->Find("day"), system_->Find("week")};
  const int kTypeCount = 3;
  int agreements = 0, accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.Uniform(2, 4));
    EventStructure s;
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    for (int v = 1; v < n; ++v) {
      std::int64_t lo = rng.Uniform(0, 2);
      ASSERT_TRUE(s.AddConstraint(static_cast<int>(rng.Uniform(0, v - 1)), v,
                                  Tcg::Of(lo, lo + rng.Uniform(0, 3),
                                          types[rng.Index(4)]))
                      .ok());
    }
    auto built = BuildTagForStructure(s);
    ASSERT_TRUE(built.ok());
    TagMatcher matcher(&built->tag);
    std::vector<EventTypeId> phi;
    for (int v = 0; v < n; ++v) {
      phi.push_back(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)));
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypeCount);
    EventSequence seq;
    TimePoint t = rng.Uniform(0, 3) * kSecondsPerDay;
    for (int i = 0; i < 10; ++i) {
      t += rng.Uniform(1, 2 * kSecondsPerDay);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)), t);
    }
    bool tag_says = matcher.Accepts(seq.View(), symbols);
    bool oracle_says = OccursBruteForce(s, phi, seq.View());
    ASSERT_EQ(tag_says, oracle_says) << s.ToString() << " trial " << trial;
    ++agreements;
    accepted += tag_says;
  }
  EXPECT_EQ(agreements, 60);
  EXPECT_GT(accepted, 5);
  EXPECT_LT(accepted, 55);
}

TEST_F(PaperNarrativeTest, HolidayCalendarEndToEnd) {
  // A holiday on Fri 1970-01-09 removes a b-day: patterns planted across
  // it shift their b-day distances. Verify the TCG semantics through the
  // whole stack with a custom holiday system.
  auto holiday_system =
      GranularitySystem::Gregorian({CivilDate{1970, 1, 9}});
  const Granularity* b_day = holiday_system->Find("b-day");
  // Thu Jan 8 10:00 and Mon Jan 12 10:00: adjacent b-days (Fri is a
  // holiday, Sat/Sun weekend).
  TimePoint thu = 7 * kSecondsPerDay + 10 * 3600;
  TimePoint mon = 11 * kSecondsPerDay + 10 * 3600;
  EXPECT_TRUE(Satisfies(Tcg::Of(1, 1, b_day), thu, mon));
  // In the plain calendar they are 2 b-days apart.
  auto plain = GranularitySystem::Gregorian();
  EXPECT_FALSE(Satisfies(Tcg::Of(1, 1, plain->Find("b-day")), thu, mon));
  EXPECT_TRUE(Satisfies(Tcg::Of(2, 2, plain->Find("b-day")), thu, mon));

  // Mining with the holiday calendar accepts the cross-holiday pattern as
  // "next business day".
  EventStructure structure;
  VariableId x0 = structure.AddVariable("X0");
  VariableId x1 = structure.AddVariable("X1");
  ASSERT_TRUE(structure.AddConstraint(x0, x1, Tcg::Of(1, 1, b_day)).ok());
  EventSequence seq;
  seq.Add(0, thu);
  seq.Add(1, mon);
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.5;
  problem.reference_type = 0;
  Miner miner(holiday_system.get());
  auto report = miner.Mine(problem, seq);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->solutions.size(), 1u);
  EXPECT_EQ(report->solutions[0].assignment[1], 1);
}

}  // namespace
}  // namespace granmine
