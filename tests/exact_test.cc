#include "granmine/constraint/exact.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/constraint/subset_sum.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

class ExactTest : public testing::Test {
 protected:
  ExactTest() {
    unit_ = toy_.AddUniform("unit", 1);
    three_ = toy_.AddUniform("three", 3);
    five_ = toy_.AddUniform("five", 5);
    gapped_ = toy_.AddSynthetic("gapped", 4, {TimeSpan::Of(0, 2)});
  }
  ExactResult Check(const EventStructure& s,
                    ExactOptions options = ExactOptions{}) {
    ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(),
                                    options);
    Result<ExactResult> result = checker.Check(s);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }
  GranularitySystem toy_;
  const Granularity* unit_;
  const Granularity* three_;
  const Granularity* five_;
  const Granularity* gapped_;
};

TEST_F(ExactTest, TrivialStructures) {
  EventStructure s;
  EXPECT_TRUE(Check(s).consistent);
  s.AddVariable("X0");
  ExactResult one = Check(s);
  EXPECT_TRUE(one.consistent);
  EXPECT_EQ(one.witness.size(), 1u);
}

TEST_F(ExactTest, SimpleChainWitness) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(1, 1, three_)).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(2, 2, three_)).ok());
  ExactResult result = Check(s);
  ASSERT_TRUE(result.consistent);
  EXPECT_TRUE(SatisfiesAllConstraints(s, result.witness));
  EXPECT_EQ(TickDifference(*three_, result.witness[0], result.witness[2]), 3);
}

TEST_F(ExactTest, DisjunctionViaGranularityInteraction) {
  // three-blocks of 'unit' with both same-three and unit-distance pins.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(three_)).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(2, 2, unit_)).ok());
  // Satisfiable: x0 at the start of a three-tick, x1 two units later.
  ExactResult result = Check(s);
  ASSERT_TRUE(result.consistent);
  EXPECT_EQ(result.witness[1] - result.witness[0], 2);
  EXPECT_EQ(result.witness[0] % 3, 0);
}

TEST_F(ExactTest, InfeasibleCombination) {
  // Same three-tick but 4 units apart: impossible (tick is 3 wide).
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(three_)).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(4, 4, unit_)).ok());
  EXPECT_FALSE(Check(s).consistent);
}

TEST_F(ExactTest, GappedSupportMatters) {
  // 'gapped' covers [0,2] of each 4-cycle. Forcing a unit distance of 3
  // within the same gapped tick is impossible; distance 2 is fine.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(gapped_)).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(3, 3, unit_)).ok());
  EXPECT_FALSE(Check(s).consistent);

  EventStructure s2;
  x0 = s2.AddVariable("X0");
  x1 = s2.AddVariable("X1");
  ASSERT_TRUE(s2.AddConstraint(x0, x1, Tcg::Same(gapped_)).ok());
  ASSERT_TRUE(s2.AddConstraint(x0, x1, Tcg::Of(2, 2, unit_)).ok());
  EXPECT_TRUE(Check(s2).consistent);
}

TEST_F(ExactTest, CellRepresentativesMatchFullEnumeration) {
  // Differential property: the cell-representative search agrees with
  // exhaustive instant enumeration on random small structures.
  Rng rng(777);
  const Granularity* types[] = {unit_, three_, five_, gapped_};
  int disagreements = 0, consistent = 0;
  for (int trial = 0; trial < 120; ++trial) {
    EventStructure s;
    const int n = static_cast<int>(rng.Uniform(2, 4));
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    int edges = static_cast<int>(rng.Uniform(1, 4));
    for (int e = 0; e < edges; ++e) {
      int a = static_cast<int>(rng.Uniform(0, n - 2));
      int b = static_cast<int>(rng.Uniform(a + 1, n - 1));
      std::int64_t lo = rng.Uniform(0, 3);
      ASSERT_TRUE(
          s.AddConstraint(a, b,
                          Tcg::Of(lo, lo + rng.Uniform(0, 2),
                                  types[rng.Index(4)]))
              .ok());
    }
    ExactOptions cells;
    cells.horizon_span = 80;
    ExactOptions full = cells;
    full.cell_representatives = false;
    bool with_cells = Check(s, cells).consistent;
    bool with_full = Check(s, full).consistent;
    if (with_cells != with_full) ++disagreements;
    if (with_full) ++consistent;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(consistent, 20);  // the family is not degenerate
}

TEST_F(ExactTest, NodeBudgetIsReported) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 5, unit_)).ok());
  ExactOptions options;
  options.max_nodes = 1;
  ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(), options);
  auto result = checker.Check(s);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class SubsetSumTest : public testing::Test {
 protected:
  SubsetSumTest() {
    // A toy 30-unit "month" keeps the reduction search tractable.
    month_ = toy_.AddUniform("toy-month", 30);
  }
  std::optional<std::vector<bool>> Solve(std::vector<std::int64_t> numbers,
                                         std::int64_t target) {
    SubsetSumInstance instance{std::move(numbers), target};
    ExactOptions options;
    options.max_nodes = 5'000'000;
    auto result = SolveSubsetSum(&toy_, month_, instance, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }
  GranularitySystem toy_;
  const Granularity* month_;
};

TEST_F(SubsetSumTest, StructureShape) {
  SubsetSumInstance instance{{2, 3}, 5};
  auto reduction = BuildSubsetSumStructure(&toy_, month_, instance);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  // k=2: X1..X3, V1..V2, U1..U2 = 7 variables.
  EXPECT_EQ(reduction->structure.variable_count(), 7);
  EXPECT_TRUE(reduction->structure.ValidateDag().ok());
  // Multi-source: no root.
  EXPECT_FALSE(reduction->structure.FindRoot().ok());
  // The n-month granularities got registered.
  EXPECT_NE(toy_.Find("2xtoy-month"), nullptr);
  EXPECT_NE(toy_.Find("3xtoy-month"), nullptr);
}

TEST_F(SubsetSumTest, SolvesPositiveInstances) {
  auto full = Solve({2, 3}, 5);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, (std::vector<bool>{true, true}));

  auto partial = Solve({2, 3}, 3);
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(*partial, (std::vector<bool>{false, true}));

  auto empty = Solve({2, 3}, 0);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(*empty, (std::vector<bool>{false, false}));
}

TEST_F(SubsetSumTest, RejectsNegativeInstances) {
  EXPECT_FALSE(Solve({2, 3}, 4).has_value());
  EXPECT_FALSE(Solve({2, 3}, 6).has_value());
  EXPECT_FALSE(Solve({3, 5}, 4).has_value());
}

TEST_F(SubsetSumTest, ThreeElementInstances) {
  auto found = Solve({2, 3, 5}, 7);
  ASSERT_TRUE(found.has_value());
  // {2, 5} is the unique subset summing to 7.
  EXPECT_EQ(*found, (std::vector<bool>{true, false, true}));
  EXPECT_FALSE(Solve({2, 3, 5}, 9).has_value());
}

}  // namespace
}  // namespace granmine
