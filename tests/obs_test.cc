// Tests for the observability layer (src/granmine/obs): registry aggregation
// under concurrent writers (run under TSAN via the ctest "sanitizer" label),
// power-of-two histogram bucket boundaries, Prometheus text exposition, trace
// JSON export, and — the contract the instrumentation design exists for —
// metric snapshots that are byte-identical across thread counts on the
// streaming differential fixture. In a GRANMINE_OBS=OFF build the macro
// expansions are proven empty at compile time; the registry tests still run
// (only the call-site macros are compiled out, never the classes).

#include "granmine/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "granmine/obs/metrics.h"
#include "granmine/obs/trace.h"
#include "granmine/stream/online_miner.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

using obs::MetricId;
using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricValue;
using obs::TraceCollector;
using obs::TraceSpan;

// Every test drives the process-global registry; start it from a clean,
// enabled state and leave it disabled so later tests see no stray cost.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
    TraceCollector::Global().set_enabled(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    TraceCollector::Global().set_enabled(false);
  }
};

TEST_F(ObsTest, CounterAggregatesExactTotalsAcrossThreads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterCounter("obs_test_thread_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, id] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) registry.Add(id);
    });
  }
  for (std::thread& t : threads) t.join();  // quiesce for exact totals

  // Keep the snapshot alive: Find returns a pointer into it.
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_thread_total");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, MetricKind::kCounter);
  EXPECT_EQ(metric->value, kThreads * kPerThread);
}

// Shards released at thread exit must keep their counts: totals survive the
// writer threads that produced them.
TEST_F(ObsTest, ReleasedShardsStillCountInSnapshots) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterCounter("obs_test_released_total");
  for (int round = 0; round < 4; ++round) {
    std::thread([&registry, id] { registry.Add(id, 5); }).join();
  }
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_released_total");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, 20u);
}

TEST_F(ObsTest, RegistrationIsIdempotentAndLabelsDistinguish) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId a = registry.RegisterCounter("obs_test_idem_total",
                                              "result=\"hit\"");
  const MetricId b = registry.RegisterCounter("obs_test_idem_total",
                                              "result=\"hit\"");
  const MetricId c = registry.RegisterCounter("obs_test_idem_total",
                                              "result=\"miss\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  registry.Add(a, 3);
  registry.Add(c, 4);
  const auto snapshot = registry.Snapshot();
  const MetricValue* hit =
      snapshot.Find("obs_test_idem_total", "result=\"hit\"");
  const MetricValue* miss =
      snapshot.Find("obs_test_idem_total", "result=\"miss\"");
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(hit->value, 3u);
  EXPECT_EQ(miss->value, 4u);
}

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterCounter("obs_test_disabled_total");
  registry.set_enabled(false);
  registry.Add(id, 100);
  registry.set_enabled(true);
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_disabled_total");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, 0u);
}

// Bucket b holds values of bit width exactly b: [2^(b-1), 2^b - 1], with
// bucket 0 reserved for zero. Pin the boundaries on both sides of each power
// of two.
TEST_F(ObsTest, HistogramBucketBoundaries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterHistogram("obs_test_latency_us");
  const std::uint64_t big = std::uint64_t{1} << 20;
  for (std::uint64_t value : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{2}, std::uint64_t{3},
                              std::uint64_t{4}, std::uint64_t{7},
                              std::uint64_t{8}, big}) {
    registry.Observe(id, value);
  }
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_latency_us");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, MetricKind::kHistogram);
  ASSERT_EQ(metric->buckets.size(),
            static_cast<std::size_t>(obs::kHistogramBuckets));
  EXPECT_EQ(metric->buckets[0], 1u);   // 0
  EXPECT_EQ(metric->buckets[1], 1u);   // 1
  EXPECT_EQ(metric->buckets[2], 2u);   // 2, 3
  EXPECT_EQ(metric->buckets[3], 2u);   // 4, 7
  EXPECT_EQ(metric->buckets[4], 1u);   // 8
  EXPECT_EQ(metric->buckets[21], 1u);  // 2^20
  EXPECT_EQ(metric->value, 8u);        // observation count
  EXPECT_EQ(metric->sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + big);
}

TEST_F(ObsTest, HistogramMaxValueLandsInTopBucket) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterHistogram("obs_test_top_bucket_us");
  registry.Observe(id, ~std::uint64_t{0});
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_top_bucket_us");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->buckets[64], 1u);
  EXPECT_EQ(metric->sum, ~std::uint64_t{0});
}

TEST_F(ObsTest, HistogramConcurrentObserversKeepExactCount) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterHistogram("obs_test_mt_hist_us");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, id, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.Observe(id, i % (16u << t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_mt_hist_us");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, kThreads * kPerThread);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId id = registry.RegisterGauge("obs_test_queue_depth");
  registry.GaugeSet(id, 12);
  registry.GaugeAdd(id, -5);
  const auto snapshot = registry.Snapshot();
  const MetricValue* metric = snapshot.Find("obs_test_queue_depth");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, MetricKind::kGauge);
  EXPECT_EQ(metric->gauge, 7);
}

TEST_F(ObsTest, PrometheusTextExposition) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Add(registry.RegisterCounter("obs_test_expo_total",
                                        "result=\"hit\""),
               2);
  registry.GaugeSet(registry.RegisterGauge("obs_test_expo_depth"), -3);
  const MetricId hist = registry.RegisterHistogram("obs_test_expo_us");
  registry.Observe(hist, 0);
  registry.Observe(hist, 5);

  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE obs_test_expo_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_total{result=\"hit\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_expo_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_depth -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_expo_us histogram\n"),
            std::string::npos);
  // Cumulative buckets: the zero lands in le="0", 5 (bit width 3) in le="7".
  EXPECT_NE(text.find("obs_test_expo_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_bucket{le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_count 2\n"), std::string::npos);
  // Exposition must be deterministic: two snapshots render identically.
  EXPECT_EQ(text, registry.Snapshot().ToPrometheusText());
}

TEST_F(ObsTest, PrometheusLabelValueEscaping) {
  // The text-exposition spec requires \\ for backslash, \" for double-quote
  // and \n for newline inside quoted label values.
  EXPECT_EQ(obs::EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");

  MetricsRegistry& registry = MetricsRegistry::Global();
  // A value escaped at registration time passes through unchanged.
  registry.Add(registry.RegisterCounter(
                   "obs_test_escape_total",
                   "path=\"" + obs::EscapeLabelValue("a\\b\"c\nd") + "\""),
               1);
  // A pre-rendered body carrying raw backslash / newline is repaired; the
  // exposition must never emit a raw newline inside a quoted value.
  registry.Add(registry.RegisterCounter("obs_test_escape_raw_total",
                                        "note=\"x\ny\\z\""),
               1);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(
      text.find("obs_test_escape_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("obs_test_escape_raw_total{note=\"x\\ny\\\\z\"} 1\n"),
            std::string::npos);
}

TEST_F(ObsTest, TraceSpansExportChromeJson) {
  TraceCollector& collector = TraceCollector::Global();
  collector.set_enabled(true);
  {
    TraceSpan outer("obs_test_outer");
    TraceSpan inner("obs_test_inner");
  }
  EXPECT_EQ(collector.size(), 2u);
  const std::string json = collector.ExportJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Structurally a JSON object; Perfetto accepts the trace_event schema.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(ObsTest, DisabledTraceRecordsNothing) {
  TraceCollector& collector = TraceCollector::Global();
  ASSERT_FALSE(collector.enabled());
  { TraceSpan span("obs_test_ignored"); }
  EXPECT_EQ(collector.size(), 0u);
}

TEST_F(ObsTest, SpanStraddlingADisableIsDroppedNotCorrupted) {
  TraceCollector& collector = TraceCollector::Global();
  collector.set_enabled(true);
  {
    TraceSpan span("obs_test_straddle");
    // Record() re-checks the switch, so a span whose scope straddles a
    // disable is dropped cleanly — and a later re-enable does not resurrect
    // it.
    collector.set_enabled(false);
  }
  collector.set_enabled(true);
  EXPECT_EQ(collector.size(), 0u);
  { TraceSpan span("obs_test_after"); }
  EXPECT_EQ(collector.size(), 1u);
}

#if GRANMINE_OBS_ENABLED

// The determinism contract on the streaming differential fixture (the same
// deterministic pseudo-random stream stream_test.cc uses): every metric
// family except granmine_executor_* — whose chunk accounting legitimately
// depends on the worker count — must be byte-identical between a serial and
// a 4-thread run of the identical workload.
std::string FilteredStreamMetrics(int threads) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  EXPECT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 8, unit)).ok());
  EXPECT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(0, 8, unit)).ok());
  std::vector<Event> events;
  std::uint64_t state = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  for (int i = 0; i < 48; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((state >> 33) % 2);
    events.push_back(Event{static_cast<EventTypeId>((state >> 13) % 6), t});
  }
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  problem.allowed.assign(3, {});
  problem.allowed[1] = {0, 1, 2, 3, 4, 5};
  problem.allowed[2] = {0, 1, 2, 3, 4, 5};

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.set_enabled(false);
  registry.Reset();
  registry.set_enabled(true);

  OnlineMinerOptions options;
  options.num_threads = threads;
  Result<OnlineMiner> miner = OnlineMiner::Create(&toy, problem, options);
  EXPECT_TRUE(miner.ok()) << miner.status();
  for (const Event& event : events) {
    EXPECT_TRUE(miner->Ingest(event).ok());
  }
  Result<MiningReport> mid = miner->Snapshot();
  EXPECT_TRUE(mid.ok());
  miner->Seal();
  Result<MiningReport> report = miner->Snapshot();
  EXPECT_TRUE(report.ok());
  registry.set_enabled(false);

  std::istringstream lines(registry.Snapshot().ToPrometheusText());
  std::string filtered;
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("granmine_executor_") != std::string::npos) continue;
    filtered += line;
    filtered += '\n';
  }
  return filtered;
}

TEST_F(ObsTest, StreamMetricsAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = FilteredStreamMetrics(1);
  // The instrumented families must actually be present, not vacuously equal.
  EXPECT_NE(serial.find("granmine_stream_events_ingested_total 48"),
            std::string::npos)
      << serial;
  EXPECT_NE(serial.find("granmine_tag_transitions_total"), std::string::npos);
  EXPECT_NE(serial.find("granmine_mine_scans_total"), std::string::npos);
  for (int threads : {2, 4}) {
    EXPECT_EQ(serial, FilteredStreamMetrics(threads))
        << "threads=" << threads;
  }
}

#else  // !GRANMINE_OBS_ENABLED

// The kill-switch proof: with GRANMINE_OBS=OFF every instrumentation macro
// must expand to *nothing* — stringifying the expansion yields the empty
// string, so there is no code, no branch, and no registry reference left at
// any call site.
#define GM_OBS_TEST_STR_IMPL(...) #__VA_ARGS__
#define GM_OBS_TEST_STR(...) GM_OBS_TEST_STR_IMPL(__VA_ARGS__)

static_assert(sizeof(GM_OBS_TEST_STR(GM_COUNTER_ADD("n", "", 1))) == 1,
              "GM_COUNTER_ADD must compile to nothing when GRANMINE_OBS=OFF");
static_assert(sizeof(GM_OBS_TEST_STR(GM_GAUGE_SET("n", "", 1))) == 1,
              "GM_GAUGE_SET must compile to nothing when GRANMINE_OBS=OFF");
static_assert(sizeof(GM_OBS_TEST_STR(GM_HISTOGRAM_OBSERVE("n", "", 1))) == 1,
              "GM_HISTOGRAM_OBSERVE must compile to nothing when "
              "GRANMINE_OBS=OFF");
static_assert(sizeof(GM_OBS_TEST_STR(GM_TRACE_SPAN("n"))) == 1,
              "GM_TRACE_SPAN must compile to nothing when GRANMINE_OBS=OFF");
static_assert(sizeof(GM_OBS_TEST_STR(GM_OBS_ONLY(int unused;))) == 1,
              "GM_OBS_ONLY must compile to nothing when GRANMINE_OBS=OFF");
static_assert(sizeof(GM_OBS_TEST_STR(GM_LOG(
                  ::granmine::obs::LogLevel::kWarn, "c", "m",
                  {"k", "v"}))) == 1,
              "GM_LOG must compile to nothing when GRANMINE_OBS=OFF");

TEST(ObsKillSwitchTest, MacrosExpandToNothing) {
  // The static_asserts above are the real test; this records the config.
  SUCCEED() << "GRANMINE_OBS=OFF build: macros verified empty at compile time";
}

#endif  // GRANMINE_OBS_ENABLED

}  // namespace
}  // namespace granmine
