// Validation contract of the granmine_cli flag parsers (io/cli_args):
// malformed values are a Status with the offending flag named, never UB,
// a silent clamp, or an uncaught exception.

#include "granmine/io/cli_args.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace granmine {
namespace {

Result<CliArgs> Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "granmine_cli");
  return ParseCliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseCliArgsTest, ParsesCommandFlagsPinsAndSwitches) {
  auto args = Parse({"mine", "--structure", "s.txt", "--confidence=0.25",
                     "--pin", "a=T1", "--pin", "b=T2", "--naive"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->command, "mine");
  EXPECT_EQ(args->flags.at("structure"), "s.txt");
  EXPECT_EQ(args->flags.at("confidence"), "0.25");  // --flag=value form
  EXPECT_EQ(args->pins, (std::vector<std::string>{"a=T1", "b=T2"}));
  EXPECT_TRUE(args->naive);
  EXPECT_FALSE(args->exact);
}

TEST(ParseCliArgsTest, RepeatedStructureFlagsCollectInOrder) {
  // flags is a last-wins map, so repeatable consumers (granmine_serve's
  // `[--structure FILE]...`) read the structures vector instead.
  auto args = Parse({"serve", "--structure", "a.txt", "--structure=b.txt",
                     "--structure", "c.txt"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->structures,
            (std::vector<std::string>{"a.txt", "b.txt", "c.txt"}));
  EXPECT_EQ(args->flags.at("structure"), "c.txt");
}

TEST(ParseCliArgsTest, RejectsMissingCommandAndUnknownFlags) {
  EXPECT_FALSE(Parse({}).ok());
  EXPECT_FALSE(Parse({"mine", "stray-positional"}).ok());
  // A value-taking flag at the end of the line has no value to consume.
  EXPECT_FALSE(Parse({"mine", "--structure"}).ok());
}

TEST(ParseThreadCountTest, RejectsZero) {
  // `--threads 0` used to silently mean hardware concurrency; it is now a
  // usage error (omit the flag instead).
  Result<int> zero = ParseThreadCount("0");
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().ToString().find("--threads"), std::string::npos);
}

TEST(ParseThreadCountTest, RejectsNegativeGarbageAndOverflow) {
  EXPECT_FALSE(ParseThreadCount("-4").ok());
  EXPECT_FALSE(ParseThreadCount("four").ok());
  EXPECT_FALSE(ParseThreadCount("4x").ok());
  EXPECT_FALSE(ParseThreadCount("").ok());
  EXPECT_FALSE(ParseThreadCount("1025").ok());
  EXPECT_FALSE(ParseThreadCount("99999999999999999999").ok());
}

TEST(ParseThreadCountTest, AcceptsTheValidRange) {
  ASSERT_TRUE(ParseThreadCount("1").ok());
  EXPECT_EQ(*ParseThreadCount("1"), 1);
  EXPECT_EQ(*ParseThreadCount("16"), 16);
  EXPECT_EQ(*ParseThreadCount("1024"), 1024);
}

TEST(ParsePositiveIntTest, RejectsNegativeZeroAndGarbage) {
  EXPECT_FALSE(ParsePositiveInt("deadline-ms", "-1").ok());
  EXPECT_FALSE(ParsePositiveInt("deadline-ms", "0").ok());
  EXPECT_FALSE(ParsePositiveInt("deadline-ms", "soon").ok());
  Result<std::int64_t> negative = ParsePositiveInt("deadline-ms", "-250");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().ToString().find("--deadline-ms"),
            std::string::npos);
  EXPECT_EQ(*ParsePositiveInt("deadline-ms", "250"), 250);
}

TEST(ParseNonNegativeIntTest, AcceptsZeroRejectsNegative) {
  EXPECT_EQ(*ParseNonNegativeInt("tolerance", "0"), 0);
  EXPECT_FALSE(ParseNonNegativeInt("tolerance", "-1").ok());
}

TEST(ParseConfidenceTest, RejectsOutOfRangeAndGarbage) {
  EXPECT_FALSE(ParseConfidence("theta", "-0.1").ok());
  EXPECT_FALSE(ParseConfidence("theta", "1.5").ok());
  EXPECT_FALSE(ParseConfidence("theta", "nan").ok());
  EXPECT_FALSE(ParseConfidence("theta", "half").ok());
  EXPECT_FALSE(ParseConfidence("theta", "0.5x").ok());
  EXPECT_EQ(*ParseConfidence("theta", "0"), 0.0);
  EXPECT_EQ(*ParseConfidence("theta", "0.5"), 0.5);
  EXPECT_EQ(*ParseConfidence("theta", "1"), 1.0);
}

TEST(ParseStreamWindowTest, RejectsWindowShorterThanSlide) {
  Result<StreamWindowArgs> bad = ParseStreamWindow("60", "120", nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("--window"), std::string::npos);
  EXPECT_NE(bad.status().ToString().find("--slide"), std::string::npos);
}

TEST(ParseStreamWindowTest, RejectsNonPositiveLengths) {
  EXPECT_FALSE(ParseStreamWindow("0", "0", nullptr).ok());
  EXPECT_FALSE(ParseStreamWindow("-60", "30", nullptr).ok());
  EXPECT_FALSE(ParseStreamWindow("60", "-30", nullptr).ok());
  EXPECT_FALSE(ParseStreamWindow("week", "30", nullptr).ok());
}

TEST(ParseStreamWindowTest, AcceptsValidGeometryWithDefaultTheta) {
  Result<StreamWindowArgs> window = ParseStreamWindow("120", "120", nullptr);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->window, 120);
  EXPECT_EQ(window->slide, 120);
  EXPECT_EQ(window->theta, 0.5);
}

TEST(ParseStreamWindowTest, ParsesAndValidatesTheta) {
  const std::string quarter = "0.25";
  Result<StreamWindowArgs> window = ParseStreamWindow("600", "60", &quarter);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->theta, 0.25);
  const std::string bad = "2.0";
  EXPECT_FALSE(ParseStreamWindow("600", "60", &bad).ok());
}

TEST(ParseEngineFlagsTest, AbsentFlagsStayUnset) {
  auto args = Parse({"mine", "--structure", "s.txt"});
  ASSERT_TRUE(args.ok());
  auto flags = ParseEngineFlags(*args);
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->threads.has_value());
  EXPECT_FALSE(flags->deadline_ms.has_value());
  EXPECT_TRUE(flags->metrics_out.empty());
  EXPECT_TRUE(flags->trace_out.empty());
}

TEST(ParseEngineFlagsTest, ParsesAllFourFlags) {
  auto args = Parse({"stream", "--threads", "8", "--deadline-ms=250",
                     "--metrics-out", "m.prom", "--trace-out", "t.json"});
  ASSERT_TRUE(args.ok());
  // Pin the machine width so the clamp cannot fire on a narrow CI box.
  auto flags = ParseEngineFlags(*args, /*hardware_threads=*/8);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->threads, 8);
  EXPECT_EQ(flags->deadline_ms, 250);
  EXPECT_EQ(flags->metrics_out, "m.prom");
  EXPECT_EQ(flags->trace_out, "t.json");
}

TEST(ParseEngineFlagsTest, ClampsThreadsToHardwareConcurrency) {
  auto args = Parse({"mine", "--threads", "64"});
  ASSERT_TRUE(args.ok());
  auto flags = ParseEngineFlags(*args, /*hardware_threads=*/4);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->threads, 4);
  // The clamp is recorded, not printed: the binary routes the warning to
  // stderr or the structured logger.
  ASSERT_TRUE(flags->threads_clamp_warning.has_value());
  EXPECT_NE(flags->threads_clamp_warning->find("clamping to 4"),
            std::string::npos);

  // At or below the machine width the value passes through untouched.
  auto exact = ParseEngineFlags(*args, /*hardware_threads=*/64);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->threads, 64);
  EXPECT_FALSE(exact->threads_clamp_warning.has_value());

  // Unknown machine width (hardware_concurrency() == 0): no clamp.
  auto unknown = ParseEngineFlags(*args, /*hardware_threads=*/0);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->threads, 64);

  // The clamp keeps the parser's [1, 1024] contract intact: out-of-range
  // values are still rejected, not clamped.
  auto over = Parse({"mine", "--threads", "2048"});
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(ParseEngineFlags(*over, /*hardware_threads=*/4).ok());
}

TEST(ParseEngineFlagsTest, ParsesOverloadFlags) {
  auto args = Parse({"mine", "--mem-budget-mb", "64", "--max-queue=8",
                     "--degrade"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->degrade);
  auto flags = ParseEngineFlags(*args, /*hardware_threads=*/4);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->mem_budget_mb, 64);
  EXPECT_EQ(flags->max_queue, 8);
  EXPECT_TRUE(flags->degrade);

  // Absent flags stay unset/false — admission must stay off by default.
  auto plain = Parse({"mine"});
  ASSERT_TRUE(plain.ok());
  auto plain_flags = ParseEngineFlags(*plain, /*hardware_threads=*/4);
  ASSERT_TRUE(plain_flags.ok());
  EXPECT_FALSE(plain_flags->mem_budget_mb.has_value());
  EXPECT_FALSE(plain_flags->max_queue.has_value());
  EXPECT_FALSE(plain_flags->degrade);

  auto bad = Parse({"mine", "--mem-budget-mb", "0"});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ParseEngineFlags(*bad, /*hardware_threads=*/4).ok());
}

TEST(ParseEngineFlagsTest, ParsesLogFlags) {
  auto args = Parse({"mine", "--log-out", "/tmp/granmine_cli_args_test.log",
                     "--log-level", "debug"});
  ASSERT_TRUE(args.ok());
  auto flags = ParseEngineFlags(*args, /*hardware_threads=*/4);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->log_out, "/tmp/granmine_cli_args_test.log");
  ASSERT_TRUE(flags->log_level.has_value());
  EXPECT_EQ(*flags->log_level, obs::LogLevel::kDebug);

  // Absent: the sink stays off and the level unset (the binary defaults it).
  auto plain = Parse({"mine"});
  ASSERT_TRUE(plain.ok());
  auto plain_flags = ParseEngineFlags(*plain, /*hardware_threads=*/4);
  ASSERT_TRUE(plain_flags.ok());
  EXPECT_TRUE(plain_flags->log_out.empty());
  EXPECT_FALSE(plain_flags->log_level.has_value());

  auto bad = Parse({"mine", "--log-level", "verbose"});
  ASSERT_TRUE(bad.ok());
  auto bad_flags = ParseEngineFlags(*bad, /*hardware_threads=*/4);
  ASSERT_FALSE(bad_flags.ok());
  EXPECT_NE(bad_flags.status().message().find("--log-level"),
            std::string::npos);
}

TEST(ParseEngineFlagsTest, InvalidValuesNameTheFlag) {
  auto zero_threads = Parse({"mine", "--threads", "0"});
  ASSERT_TRUE(zero_threads.ok());
  auto flags = ParseEngineFlags(*zero_threads);
  ASSERT_FALSE(flags.ok());
  EXPECT_NE(flags.status().message().find("--threads"), std::string::npos);

  auto bad_deadline = Parse({"match", "--deadline-ms", "-5"});
  ASSERT_TRUE(bad_deadline.ok());
  auto deadline_flags = ParseEngineFlags(*bad_deadline);
  ASSERT_FALSE(deadline_flags.ok());
  EXPECT_NE(deadline_flags.status().message().find("--deadline-ms"),
            std::string::npos);

  auto empty_path = Parse({"mine", "--metrics-out="});
  ASSERT_TRUE(empty_path.ok());
  auto path_flags = ParseEngineFlags(*empty_path);
  ASSERT_FALSE(path_flags.ok());
  EXPECT_NE(path_flags.status().message().find("--metrics-out"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Path-taking flags share one validator (ParseOutputPath): the error names
// both the flag and the offending path, an unwritable destination is caught
// at parse time (not after hours of streaming), and probing a path that
// already exists must not clobber its contents.

TEST(ParseOutputPathTest, RejectsEmptyAndUnwritablePathsNamingBoth) {
  auto empty = ParseOutputPath("checkpoint-path", "");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("--checkpoint-path"),
            std::string::npos);

  const std::string unwritable = "/nonexistent-dir/ckpt.bin";
  auto bad = ParseOutputPath("trace-out", unwritable);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--trace-out"), std::string::npos);
  EXPECT_NE(bad.status().message().find(unwritable), std::string::npos);
}

TEST(ParseOutputPathTest, ProbeNeitherClobbersNorLeavesFiles) {
  const std::string fresh = testing::TempDir() + "granmine_cli_probe_fresh";
  std::remove(fresh.c_str());
  auto ok = ParseOutputPath("metrics-out", fresh);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, fresh);
  // The writability probe must not leave an empty file behind: a later
  // "checkpoint exists => resume" test would see phantom state.
  EXPECT_EQ(std::fopen(fresh.c_str(), "rb"), nullptr);

  const std::string existing = testing::TempDir() + "granmine_cli_probe_keep";
  std::FILE* f = std::fopen(existing.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("checkpoint bytes", f);
  std::fclose(f);
  ASSERT_TRUE(ParseOutputPath("checkpoint-path", existing).ok());
  f = std::fopen(existing.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[32] = {};
  EXPECT_EQ(std::fread(buffer, 1, sizeof(buffer), f), 16u);
  EXPECT_EQ(std::string(buffer, 16), "checkpoint bytes");
  std::fclose(f);
  std::remove(existing.c_str());
}

TEST(ParseStreamCheckpointTest, AbsentFlagsMeanDisabled) {
  auto args = Parse({"stream"});
  ASSERT_TRUE(args.ok());
  auto checkpoint = ParseStreamCheckpoint(*args);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint->every, 0);
  EXPECT_TRUE(checkpoint->path.empty());
}

TEST(ParseStreamCheckpointTest, FlagsMustComeAsAPair) {
  auto every_only = Parse({"stream", "--checkpoint-every", "100"});
  ASSERT_TRUE(every_only.ok());
  auto missing_path = ParseStreamCheckpoint(*every_only);
  ASSERT_FALSE(missing_path.ok());
  EXPECT_NE(missing_path.status().message().find("--checkpoint-path"),
            std::string::npos);

  auto path_only = Parse({"stream", "--checkpoint-path", "/tmp/c.bin"});
  ASSERT_TRUE(path_only.ok());
  auto missing_every = ParseStreamCheckpoint(*path_only);
  ASSERT_FALSE(missing_every.ok());
  EXPECT_NE(missing_every.status().message().find("--checkpoint-every"),
            std::string::npos);
}

TEST(ParseStreamCheckpointTest, ValidatesCadenceAndPath) {
  const std::string path = testing::TempDir() + "granmine_cli_ckpt.bin";
  std::remove(path.c_str());
  auto good = Parse({"stream", "--checkpoint-every", "64",
                     "--checkpoint-path", path.c_str()});
  ASSERT_TRUE(good.ok());
  auto checkpoint = ParseStreamCheckpoint(*good);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->every, 64);
  EXPECT_EQ(checkpoint->path, path);

  for (const char* cadence : {"0", "-3", "junk"}) {
    auto bad = Parse({"stream", "--checkpoint-every", cadence,
                      "--checkpoint-path", path.c_str()});
    ASSERT_TRUE(bad.ok());
    auto refused = ParseStreamCheckpoint(*bad);
    ASSERT_FALSE(refused.ok()) << "cadence '" << cadence << "'";
    EXPECT_NE(refused.status().message().find("--checkpoint-every"),
              std::string::npos);
  }

  auto bad_path = Parse({"stream", "--checkpoint-every", "64",
                         "--checkpoint-path", "/nonexistent-dir/c.bin"});
  ASSERT_TRUE(bad_path.ok());
  auto refused = ParseStreamCheckpoint(*bad_path);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("/nonexistent-dir/c.bin"),
            std::string::npos);
}

}  // namespace
}  // namespace granmine
