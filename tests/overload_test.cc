// Overload-resilience coverage: the memory-budget governor axis
// (ChargeMemory / GovernorAllocator, StopCause::kMemBudget), the
// AdmissionController in front of the Engine (bounded queue, deadline-aware
// shedding, sticky first cause, retryable sheds), degraded screening-only
// serving (StopCause::kDegraded), bounded stream buffers, and the chaos
// harness: alloc-failure / queue-full / slow-worker faults injected at
// deterministic progress indices, with partial reports byte-identical
// between serial and multithreaded runs at every injection point
// (docs/robustness.md).

#include "granmine/engine/admission.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/governor_alloc.h"
#include "granmine/constraint/exact.h"
#include "granmine/constraint/subset_sum.h"
#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/stream/ingestor.h"
#include "granmine/stream/online_miner.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

// ---------------------------------------------------------------------------
// FaultKind and the new StopCause vocabulary.

TEST(FaultKindTest, KindGatesTripsIndependentlyOfScopeAndIndex) {
  FaultInjector alloc(GovernorScope::kMatch, /*trip_index=*/2,
                      /*cancel_globally=*/false, FaultKind::kAllocFailure);
  // A kGovernorCheck probe at the matching scope/index never trips an
  // alloc-failure injector...
  EXPECT_FALSE(alloc.ShouldTrip(GovernorScope::kMatch, 5));
  // ...but it still counts as an observed check.
  EXPECT_EQ(alloc.checks_observed(), 1u);
  // The matching kind trips with the usual scope/index gating.
  EXPECT_FALSE(alloc.ShouldFail(FaultKind::kAllocFailure,
                                GovernorScope::kMine, 5));
  EXPECT_FALSE(alloc.ShouldFail(FaultKind::kAllocFailure,
                                GovernorScope::kMatch, 1));
  EXPECT_TRUE(alloc.ShouldFail(FaultKind::kAllocFailure,
                               GovernorScope::kMatch, 2));
  EXPECT_EQ(alloc.trips_fired(), 1u);

  EXPECT_EQ(FaultKindToString(FaultKind::kGovernorCheck), "governor-check");
  EXPECT_EQ(FaultKindToString(FaultKind::kAllocFailure), "alloc-failure");
  EXPECT_EQ(FaultKindToString(FaultKind::kQueueFull), "queue-full");
  EXPECT_EQ(FaultKindToString(FaultKind::kSlowWorker), "slow-worker");
}

TEST(FaultKindTest, NewStopCausesHaveNamesAndStatuses) {
  EXPECT_EQ(StopCauseToString(StopCause::kMemBudget), "mem-budget");
  EXPECT_EQ(StopCauseToString(StopCause::kDegraded), "degraded");
  EXPECT_EQ(StopCauseToStatus(StopCause::kMemBudget, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StopCauseToStatus(StopCause::kDegraded, "x").code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// The memory-budget axis: ChargeMemory + GovernorAllocator.

TEST(MemoryGovernorTest, BudgetTripsStickyAndRefusedBytesAreNotCharged) {
  GovernorLimits limits;
  limits.memory_budget_bytes = 1000;
  ResourceGovernor governor(limits);
  EXPECT_EQ(governor.ChargeMemory(GovernorScope::kGeneral, 0, 600),
            StopCause::kNone);
  EXPECT_EQ(governor.memory_bytes(), 600u);
  // The charge that would exceed the budget is refused and rolled back:
  // accounting tracks live *granted* bytes only.
  EXPECT_EQ(governor.ChargeMemory(GovernorScope::kGeneral, 1, 600),
            StopCause::kMemBudget);
  EXPECT_EQ(governor.memory_bytes(), 600u);
  EXPECT_EQ(governor.memory_peak_bytes(), 600u);
  EXPECT_TRUE(governor.stopped());
  EXPECT_EQ(governor.cause(), StopCause::kMemBudget);
  // Sticky: later charges report the first cause, even tiny ones.
  EXPECT_EQ(governor.ChargeMemory(GovernorScope::kGeneral, 2, 1),
            StopCause::kMemBudget);
  governor.ReleaseMemory(600);
  EXPECT_EQ(governor.memory_bytes(), 0u);
  EXPECT_EQ(governor.memory_peak_bytes(), 600u);  // peak is a high-water mark
}

TEST(MemoryGovernorTest, AllocatorReleasesEverythingItCharged) {
  GovernorLimits limits;
  limits.memory_budget_bytes = 10'000;
  ResourceGovernor governor(limits);
  {
    GovernorAllocator arena(&governor, GovernorScope::kExactSearch);
    EXPECT_EQ(arena.Charge(0, 400), StopCause::kNone);
    EXPECT_EQ(arena.ChargeGrowth(1, 400, 1000), StopCause::kNone);  // +600
    EXPECT_EQ(arena.ChargeGrowth(2, 1000, 500), StopCause::kNone);  // shrink
    EXPECT_EQ(arena.charged(), 1000u);
    EXPECT_EQ(governor.memory_bytes(), 1000u);
  }
  // Destructor returned the whole arena to the shared budget.
  EXPECT_EQ(governor.memory_bytes(), 0u);
  EXPECT_FALSE(governor.stopped());

  // A detached allocator is free, like a detached ticket.
  GovernorAllocator detached;
  EXPECT_EQ(detached.Charge(0, 1 << 30), StopCause::kNone);
}

TEST(MemoryGovernorTest, LocalAllocFaultRefusesWithoutGlobalStop) {
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  FaultInjector injector(GovernorScope::kMatch, /*trip_index=*/3,
                         /*cancel_globally=*/false,
                         FaultKind::kAllocFailure);
  governor.InstallFaultInjector(&injector);
  GovernorAllocator arena(&governor, GovernorScope::kMatch);
  EXPECT_EQ(arena.Charge(2, 64), StopCause::kNone);
  EXPECT_EQ(arena.Charge(3, 64), StopCause::kFaultInjected);
  // The refusal stayed local: no shared stop, no bytes charged for it.
  EXPECT_FALSE(governor.stopped());
  EXPECT_EQ(arena.charged(), 64u);
  // The same fault with cancel_globally raises the shared flag.
  ResourceGovernor global_governor(limits);
  FaultInjector global(GovernorScope::kMatch, 0, /*cancel_globally=*/true,
                       FaultKind::kAllocFailure);
  global_governor.InstallFaultInjector(&global);
  EXPECT_EQ(global_governor.ChargeMemory(GovernorScope::kMatch, 0, 8),
            StopCause::kFaultInjected);
  EXPECT_TRUE(global_governor.stopped());
}

// ---------------------------------------------------------------------------
// Three-valued mem-budget stops across the exact search, the matcher, and
// SUBSET SUM: a refused allocation may say less, never something wrong.

class MemBudgetFixture : public testing::Test {
 protected:
  MemBudgetFixture() {
    unit_ = toy_.AddUniform("unit", 1);
    three_ = toy_.AddUniform("three", 3);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    VariableId x3 = s_.AddVariable("X3");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 5, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 5, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x2, x3, Tcg::Of(1, 2, three_)).ok());
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  const Granularity* three_;
  EventStructure s_;
};

TEST_F(MemBudgetFixture, ExactSearchUnderMemBudgetIsUndecidedNotRefuted) {
  GovernorLimits limits;
  limits.memory_budget_bytes = 1;  // nothing fits
  ResourceGovernor governor(limits);
  ExactOptions options;
  options.governor = &governor;
  ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(), options);
  auto result = checker.Check(s_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->decided());
  EXPECT_EQ(result->stopped, StopCause::kMemBudget);

  // An adequate budget decides, and releases everything it charged.
  GovernorLimits roomy;
  roomy.memory_budget_bytes = 1 << 20;
  ResourceGovernor roomy_governor(roomy);
  ExactOptions roomy_options;
  roomy_options.governor = &roomy_governor;
  ExactConsistencyChecker ok_checker(&toy_.tables(), &toy_.coverage(),
                                     roomy_options);
  auto decided = ok_checker.Check(s_);
  ASSERT_TRUE(decided.ok()) << decided.status();
  EXPECT_TRUE(decided->decided());
  EXPECT_TRUE(decided->consistent);
  EXPECT_EQ(roomy_governor.memory_bytes(), 0u);
  EXPECT_GT(roomy_governor.memory_peak_bytes(), 0u);
}

TEST_F(MemBudgetFixture, MatcherUnderMemBudgetIsUnknownWithCause) {
  auto built = BuildTagForStructure(s_);
  ASSERT_TRUE(built.ok());
  TagMatcher matcher(&built->tag);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2, 3}, 4);
  EventSequence seq;
  for (int i = 0; i < 16; ++i) seq.Add(i % 4, i);

  GovernorLimits limits;
  limits.memory_budget_bytes = 1;
  ResourceGovernor governor(limits);
  MatchOptions options;
  options.governor = &governor;
  MatchStats stats;
  EXPECT_EQ(matcher.Run(seq.View(), symbols, options, &stats),
            MatchOutcome::kUnknown);
  EXPECT_EQ(stats.stopped, StopCause::kMemBudget);
}

TEST_F(MemBudgetFixture, SubsetSumUnderMemBudgetIsAnErrorNotNoSubset) {
  auto system = GranularitySystem::Gregorian();
  const Granularity* month = system->Find("month");
  ASSERT_NE(month, nullptr);
  SubsetSumInstance instance;
  instance.numbers = {2, 3, 5};
  instance.target = 8;
  GovernorLimits limits;
  limits.memory_budget_bytes = 1;
  ResourceGovernor governor(limits);
  ExactOptions options;
  options.governor = &governor;
  auto refused = SolveSubsetSum(system.get(), month, instance, options);
  // Never a silent "no subset": a refused reduction is a loud error.
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Chaos harness over the miner: the same serializer + fixture shape as
// robustness_test.cc, extended with a FaultKind axis.

std::string FormatReport(const MiningReport& report) {
  std::string out;
  char buffer[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out += buffer;
  };
  append("roots=%zu events=%zu/%zu cand=%llu/%llu runs=%llu configs=%llu\n",
         report.total_roots, report.events_before,
         report.events_after_reduction,
         static_cast<unsigned long long>(report.candidates_before),
         static_cast<unsigned long long>(report.candidates_after_screening),
         static_cast<unsigned long long>(report.tag_runs),
         static_cast<unsigned long long>(report.matcher_configurations));
  const MiningCompleteness& c = report.completeness;
  append("complete=%d stop=%d confirmed=%llu refuted=%llu unknown=%llu "
         "not_evaluated=%llu\n",
         c.complete ? 1 : 0, static_cast<int>(c.stop),
         static_cast<unsigned long long>(c.confirmed),
         static_cast<unsigned long long>(c.refuted),
         static_cast<unsigned long long>(c.unknown),
         static_cast<unsigned long long>(c.not_evaluated));
  for (const DiscoveredType& solution : report.solutions) {
    out += "sol";
    for (EventTypeId type : solution.assignment) {
      append(" %d", type);
    }
    append(" matched=%zu freq=%.17g\n", solution.matched_roots,
           solution.frequency);
  }
  for (const UnknownCandidate& unknown : report.unknown_sample) {
    out += "unk";
    for (EventTypeId type : unknown.assignment) {
      append(" %d", type);
    }
    append(" reason=%d\n", static_cast<int>(unknown.reason));
  }
  return out;
}

class OverloadMinerTest : public testing::Test {
 protected:
  static constexpr int kTypeCount = 6;

  OverloadMinerTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 8, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 8, unit_)).ok());
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    TimePoint t = 0;
    for (int i = 0; i < 48; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      t += 1 + static_cast<TimePoint>((state >> 33) % 2);
      seq_.Add(static_cast<EventTypeId>((state >> 13) % kTypeCount), t);
    }
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    EXPECT_GT(seq_.CountOf(0), 0u);
  }

  MiningReport MineWithFault(int threads, FaultKind kind, GovernorScope scope,
                             std::uint64_t trip, bool cancel_globally) {
    MinerOptions options;
    options.num_threads = threads;
    options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    Miner miner(&toy_, options);
    GovernorLimits limits;
    limits.check_stride = 1;
    ResourceGovernor governor(limits);
    FaultInjector injector(scope, trip, cancel_globally, kind);
    governor.InstallFaultInjector(&injector);
    auto report = miner.Mine(problem_, seq_, &governor);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? *std::move(report) : MiningReport{};
  }

  static void CheckInvariant(const MiningReport& report) {
    const MiningCompleteness& c = report.completeness;
    EXPECT_EQ(c.confirmed + c.refuted + c.unknown + c.not_evaluated,
              report.candidates_after_screening);
    EXPECT_EQ(c.complete, c.unknown == 0 && c.not_evaluated == 0);
    if (!c.complete) {
      EXPECT_NE(c.stop, StopCause::kNone);
    }
    EXPECT_LE(report.unknown_sample.size(), kUnknownSampleCap);
    EXPECT_LE(report.unknown_sample.size(), c.unknown);
  }

  // Verdicts may weaken to unknown under faults but never flip: partial
  // solutions are a subset of the full run's, and nothing the full run
  // refuted is ever reported as a solution.
  static void CheckNeverWrong(const MiningReport& partial,
                              const MiningReport& full) {
    for (const DiscoveredType& solution : partial.solutions) {
      bool found = false;
      for (const DiscoveredType& reference : full.solutions) {
        if (reference.assignment == solution.assignment) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  EventSequence seq_;
  DiscoveryProblem problem_;
};

TEST_F(OverloadMinerTest, AllocFaultSweepIsByteIdenticalAcrossThreadCounts) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->completeness.complete);

  // Local alloc-failure faults in the matcher scope: each run's charge
  // indices are its own configuration counter, so exactly the runs whose
  // frontier would reach the trip index fail — at every thread count.
  int interrupted_points = 0;
  for (std::uint64_t trip = 0; trip <= 60; ++trip) {
    MiningReport serial =
        MineWithFault(1, FaultKind::kAllocFailure, GovernorScope::kMatch,
                      trip, /*cancel_globally=*/false);
    MiningReport serial_again =
        MineWithFault(1, FaultKind::kAllocFailure, GovernorScope::kMatch,
                      trip, /*cancel_globally=*/false);
    MiningReport parallel =
        MineWithFault(4, FaultKind::kAllocFailure, GovernorScope::kMatch,
                      trip, /*cancel_globally=*/false);
    CheckInvariant(serial);
    CheckInvariant(parallel);
    const std::string expected = FormatReport(serial);
    ASSERT_EQ(expected, FormatReport(serial_again)) << "trip=" << trip;
    ASSERT_EQ(expected, FormatReport(parallel)) << "trip=" << trip;
    if (serial.completeness.unknown > 0) {
      ++interrupted_points;
      EXPECT_EQ(serial.completeness.stop, StopCause::kFaultInjected);
      for (const UnknownCandidate& unknown : serial.unknown_sample) {
        EXPECT_EQ(unknown.reason, StopCause::kFaultInjected);
      }
      CheckNeverWrong(serial, *full);
    }
  }
  // Low trip indices must refuse real allocations (the matcher charges its
  // frontier seeding and every created configuration).
  EXPECT_GT(interrupted_points, 5);
}

TEST_F(OverloadMinerTest, GlobalAllocFaultSweepKeepsInvariants) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok());
  // The scan-range arena charge is keyed at the range start, which depends
  // on the worker count — so a global alloc fault there is invariant-checked
  // (accounted, never wrong), not byte-identity-checked.
  for (std::uint64_t trip = 0; trip < 8; ++trip) {
    MiningReport report =
        MineWithFault(4, FaultKind::kAllocFailure, GovernorScope::kMine, trip,
                      /*cancel_globally=*/true);
    CheckInvariant(report);
    EXPECT_FALSE(report.completeness.complete);
    EXPECT_EQ(report.completeness.stop, StopCause::kFaultInjected);
    CheckNeverWrong(report, *full);
  }
}

TEST_F(OverloadMinerTest, MemBudgetPartialMiningAccountsEveryCandidate) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok());
  // Sweep the budget from "nothing fits" upward: every report is accounted
  // and never wrong; a roomy budget is byte-identical to the ungoverned run.
  for (std::uint64_t budget : {1ull, 64ull, 512ull, 4096ull, 1ull << 22}) {
    for (int threads : {1, 4}) {
      MinerOptions options;
      options.num_threads = threads;
      options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
      Miner miner(&toy_, options);
      GovernorLimits limits;
      limits.check_stride = 1;
      limits.memory_budget_bytes = budget;
      ResourceGovernor governor(limits);
      auto report = miner.Mine(problem_, seq_, &governor);
      ASSERT_TRUE(report.ok()) << report.status();
      CheckInvariant(*report);
      CheckNeverWrong(*report, *full);
      if (!report->completeness.complete) {
        EXPECT_EQ(report->completeness.stop, StopCause::kMemBudget)
            << "budget=" << budget;
      } else {
        EXPECT_EQ(FormatReport(*report), FormatReport(*full))
            << "budget=" << budget;
      }
      // The governed bytes were all returned when the scratches died.
      EXPECT_EQ(governor.memory_bytes(), 0u);
    }
  }
}

TEST_F(OverloadMinerTest, DegradedMineIsScreeningOnlyAndDeterministic) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok());

  auto degraded_run = [&](int threads) {
    MinerOptions options;
    options.num_threads = threads;
    options.degrade_to_screening = true;
    Miner miner(&toy_, options);
    auto report = miner.Mine(problem_, seq_);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? *std::move(report) : MiningReport{};
  };
  MiningReport serial = degraded_run(1);
  MiningReport parallel = degraded_run(4);
  ASSERT_EQ(FormatReport(serial), FormatReport(parallel));
  CheckInvariant(serial);
  // Screening-only: steps 1-4 ran (same screened candidate space as the full
  // run), step 5 did not — every survivor is honestly unknown, none guessed.
  EXPECT_EQ(serial.candidates_after_screening,
            full->candidates_after_screening);
  EXPECT_TRUE(serial.solutions.empty());
  EXPECT_FALSE(serial.completeness.complete);
  EXPECT_EQ(serial.completeness.stop, StopCause::kDegraded);
  EXPECT_EQ(serial.completeness.unknown, serial.candidates_after_screening);
  EXPECT_EQ(serial.completeness.confirmed, 0u);
  EXPECT_EQ(serial.completeness.refuted, 0u);
  ASSERT_FALSE(serial.unknown_sample.empty());
  for (const UnknownCandidate& unknown : serial.unknown_sample) {
    EXPECT_EQ(unknown.reason, StopCause::kDegraded);
  }
}

// ---------------------------------------------------------------------------
// AdmissionController unit tests.

TEST(AdmissionTest, DisabledControllerHandsOutEmptyTickets) {
  AdmissionController controller(AdmissionOptions{});  // enabled = false
  auto ticket = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_TRUE(ticket.ok());
  EXPECT_FALSE(ticket->admitted());
  EXPECT_EQ(controller.admitted_total(), 0u);
  EXPECT_EQ(controller.shed_total(), 0u);
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kNone);
}

TEST(AdmissionTest, QueueFullShedIsRetryableAndSticky) {
  AdmissionOptions options;
  options.enabled = true;
  options.mine_slots = 1;
  options.max_queue = 0;  // no waiting: saturation sheds immediately
  AdmissionController controller(options);

  auto first = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->admitted());
  EXPECT_EQ(controller.admitted_total(), 1u);

  auto second = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("queue full"), std::string::npos)
      << second.status();
  // The retry contract: the shed names a backoff, and nothing was started.
  EXPECT_NE(second.status().message().find("retryable"), std::string::npos);
  EXPECT_NE(second.status().message().find("backoff"), std::string::npos);
  EXPECT_EQ(controller.shed_total(), 1u);
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kStepBudget);

  // Other classes have their own slots: match admits while mine is full.
  auto match = controller.Admit(RequestClass::kMatch, nullptr, 0);
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(match->admitted());

  // Releasing the slot re-opens the class; the first cause stays sticky.
  *first = AdmissionController::Ticket{};
  auto third = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->admitted());
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kStepBudget);
}

TEST(AdmissionTest, SlowWorkerFaultMakesDeadlinesInfeasible) {
  AdmissionOptions options;
  options.enabled = true;
  options.injected_slow_ms = 5000;
  AdmissionController controller(options);
  // The slow-worker fault fires at release time, keyed by the request's
  // arrival sequence number — deterministic, no wall-clock sleeps.
  FaultInjector slow(GovernorScope::kGeneral, /*trip_index=*/0,
                     /*cancel_globally=*/false, FaultKind::kSlowWorker);
  controller.InstallFaultInjector(&slow);
  {
    auto warmup = controller.Admit(RequestClass::kMine, nullptr, 0);
    ASSERT_TRUE(warmup.ok());
  }  // release records the synthetic 5000 ms service time
  EXPECT_EQ(controller.ServiceP95Ms(RequestClass::kMine), 5000.0);

  // A deadline the observed p95 cannot cover is shed up front.
  auto infeasible = controller.Admit(RequestClass::kMine, nullptr, 100);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(infeasible.status().message().find("p95"), std::string::npos)
      << infeasible.status();
  EXPECT_NE(infeasible.status().message().find("retryable"),
            std::string::npos);
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kDeadline);

  // A deadline that covers the p95 is admitted.
  auto feasible = controller.Admit(RequestClass::kMine, nullptr, 10'000);
  ASSERT_TRUE(feasible.ok());
  EXPECT_TRUE(feasible->admitted());
}

TEST(AdmissionTest, InjectedQueueFullFaultShedsDeterministically) {
  AdmissionOptions options;
  options.enabled = true;
  AdmissionController controller(options);
  // Fires for every arrival sequence number >= 1: the first request is
  // admitted, all later ones shed.
  FaultInjector full(GovernorScope::kGeneral, /*trip_index=*/1,
                     /*cancel_globally=*/false, FaultKind::kQueueFull);
  controller.InstallFaultInjector(&full);
  auto first = controller.Admit(RequestClass::kMatch, nullptr, 0);
  ASSERT_TRUE(first.ok());
  auto second = controller.Admit(RequestClass::kMatch, nullptr, 0);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kFaultInjected);
}

TEST(AdmissionTest, CancelledGovernorLeavesTheQueue) {
  AdmissionOptions options;
  options.enabled = true;
  options.mine_slots = 1;
  options.max_queue = 4;
  options.queue_poll_ms = 1;
  AdmissionController controller(options);
  auto holder = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_TRUE(holder.ok());

  ResourceGovernor governor;
  governor.RequestCancel();
  auto queued = controller.Admit(RequestClass::kMine, &governor, 0);
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(controller.first_shed_cause(), StopCause::kCancelled);
  EXPECT_EQ(controller.queue_depth(), 0u);
}

TEST(AdmissionTest, QueuedRequestAdmitsWhenTheSlotFrees) {
  AdmissionOptions options;
  options.enabled = true;
  options.mine_slots = 1;
  options.max_queue = 4;
  options.queue_poll_ms = 1;
  AdmissionController controller(options);
  auto holder = controller.Admit(RequestClass::kMine, nullptr, 0);
  ASSERT_TRUE(holder.ok());

  std::thread waiter([&] {
    auto queued = controller.Admit(RequestClass::kMine, nullptr, 0);
    ASSERT_TRUE(queued.ok());
    EXPECT_TRUE(queued->admitted());
  });
  // Free the slot; the waiter must be admitted, not shed.
  *holder = AdmissionController::Ticket{};
  waiter.join();
  EXPECT_EQ(controller.admitted_total(), 2u);
  EXPECT_EQ(controller.shed_total(), 0u);
  EXPECT_EQ(controller.queue_depth(), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level admission and the degradation ladder.

struct EngineFixture {
  std::unique_ptr<Engine> engine;
  EventStructure structure;
  EventSequence seq;
  DiscoveryProblem problem;
  TagBuildResult skeleton;
  SymbolMap symbols{SymbolMap::FromAssignment({0, 1, 2}, 6)};
};

EngineFixture MakeEngineFixture(EngineOptions options) {
  EngineFixture fx;
  auto engine =
      Engine::Create(std::make_unique<GranularitySystem>(), options);
  EXPECT_TRUE(engine.ok());
  fx.engine = std::move(*engine);
  const Granularity* unit = fx.engine->system()->AddUniform("unit", 1);
  VariableId x0 = fx.structure.AddVariable("X0");
  VariableId x1 = fx.structure.AddVariable("X1");
  VariableId x2 = fx.structure.AddVariable("X2");
  EXPECT_TRUE(fx.structure.AddConstraint(x0, x1, Tcg::Of(0, 8, unit)).ok());
  EXPECT_TRUE(fx.structure.AddConstraint(x1, x2, Tcg::Of(0, 8, unit)).ok());
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  TimePoint t = 0;
  for (int i = 0; i < 48; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += 1 + static_cast<TimePoint>((state >> 33) % 2);
    fx.seq.Add(static_cast<EventTypeId>((state >> 13) % 6), t);
  }
  fx.problem.structure = &fx.structure;
  fx.problem.reference_type = 0;
  fx.problem.min_confidence = 0.05;
  auto built = BuildTagForStructure(fx.structure);
  EXPECT_TRUE(built.ok());
  fx.skeleton = *std::move(built);
  return fx;
}

TEST(EngineAdmissionTest, ShedMineIsALoudRetryableError) {
  EngineOptions options;
  options.admission.enabled = true;
  EngineFixture fx = MakeEngineFixture(options);
  ASSERT_NE(fx.engine->admission(), nullptr);

  FaultInjector full(GovernorScope::kGeneral, 0, /*cancel_globally=*/false,
                     FaultKind::kQueueFull);
  fx.engine->admission()->InstallFaultInjector(&full);
  MineRequest request;
  request.problem = &fx.problem;
  request.sequence = &fx.seq;
  auto shed = fx.engine->Mine(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("retryable"), std::string::npos)
      << shed.status();
  EXPECT_EQ(fx.engine->admission()->shed_total(), 1u);
  EXPECT_EQ(fx.engine->admission()->first_shed_cause(),
            StopCause::kFaultInjected);

  // Without the injector, the identical request is served in full — nothing
  // was consumed by the shed (side-effect-free retry).
  fx.engine->admission()->InstallFaultInjector(nullptr);
  auto served = fx.engine->Mine(request);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_TRUE(served->report.completeness.complete);
}

TEST(EngineAdmissionTest, DegradationLadderServesScreeningOnly) {
  EngineOptions options;
  options.admission.enabled = true;
  options.admission.degrade_when_saturated = true;
  EngineFixture fx = MakeEngineFixture(options);

  FaultInjector full(GovernorScope::kGeneral, 0, /*cancel_globally=*/false,
                     FaultKind::kQueueFull);
  fx.engine->admission()->InstallFaultInjector(&full);

  // Mine demotes to screening-only instead of shedding.
  MineRequest mine;
  mine.problem = &fx.problem;
  mine.sequence = &fx.seq;
  auto degraded = fx.engine->Mine(mine);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->report.completeness.stop, StopCause::kDegraded);
  EXPECT_TRUE(degraded->report.solutions.empty());
  EXPECT_EQ(degraded->report.completeness.unknown +
                degraded->report.completeness.not_evaluated,
            degraded->report.candidates_after_screening);
  EXPECT_EQ(fx.engine->admission()->degraded_total(), 1u);

  // Match demotes to an honest unknown — never a guessed yes/no.
  MatchRequest match;
  match.tag = &fx.skeleton.tag;
  match.events = fx.seq.View();
  match.symbols = &fx.symbols;
  auto unknown = fx.engine->Match(match);
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->outcome, MatchOutcome::kUnknown);
  EXPECT_EQ(unknown->stats.stopped, StopCause::kDegraded);
  EXPECT_EQ(fx.engine->admission()->degraded_total(), 2u);
}

TEST(EngineAdmissionTest, MemoryBudgetThreadsThroughTheEngine) {
  EngineOptions options;
  options.limits.memory_budget_bytes = 1;  // nothing fits
  EngineFixture fx = MakeEngineFixture(options);
  // A memory budget alone produces a governor (the all-zero check).
  EXPECT_NE(fx.engine->MakeGovernor(), nullptr);

  MineRequest request;
  request.problem = &fx.problem;
  request.sequence = &fx.seq;
  request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  auto response = fx.engine->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->report.completeness.complete);
  EXPECT_EQ(response->report.completeness.stop, StopCause::kMemBudget);
  EXPECT_TRUE(response->report.solutions.empty());
}

// ---------------------------------------------------------------------------
// Stream shedding: bounded reorder buffer with a counted, deterministic
// policy instead of unbounded growth.

TEST(StreamShedTest, IngestorShedsBeforeTheWatermarkObservesTheArrival) {
  IngestorOptions options;
  options.tolerance = 0;
  options.max_buffered_events = 1;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.Ingest(Event{0, 5}).ok());
  const TimePoint mark_before = ingestor.watermark();
  // The buffer is at capacity: the next arrival is shed — and because the
  // shed happens before the watermark observes it, the committed groups stay
  // a pure function of the admitted arrivals.
  Status shed = ingestor.Ingest(Event{1, 7});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("retry"), std::string::npos) << shed;
  EXPECT_EQ(ingestor.watermark(), mark_before);
  EXPECT_EQ(ingestor.shed_events(), 1u);
  EXPECT_EQ(ingestor.late_events(), 0u);
  EXPECT_EQ(ingestor.buffered_events(), 1u);
}

TEST(StreamShedTest, BoundedOnlineMinerMatchesBatchOverAdmittedArrivals) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 4, unit)).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(0, 4, unit)).ok());
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  problem.allowed.assign(3, std::vector<EventTypeId>{});
  problem.allowed[1] = {1, 3};
  problem.allowed[2] = {2, 4};

  // Deterministic arrival stream over 5 types, in-order timestamps: with
  // tolerance 6 the buffer holds the trailing window, so a cap of 3 sheds
  // under pressure while the stream stays usable.
  std::vector<Event> arrivals;
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  TimePoint t = 0;
  for (int i = 0; i < 80; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((state >> 33) % 2);
    arrivals.push_back(Event{static_cast<EventTypeId>((state >> 13) % 5), t});
  }

  OnlineMinerOptions options;
  options.tolerance = 6;
  options.max_buffered_events = 3;
  auto run = [&](int threads) {
    OnlineMinerOptions run_options = options;
    run_options.num_threads = threads;
    auto miner = OnlineMiner::Create(&toy, problem, run_options);
    EXPECT_TRUE(miner.ok()) << miner.status();
    EventSequence admitted;
    for (const Event& event : arrivals) {
      Status status = miner->Ingest(event);
      if (status.ok()) {
        admitted.Add(event.type, event.time);
      } else {
        EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
      }
      EXPECT_LE(miner->buffered_events(), 3u);
    }
    miner->Seal();
    auto snapshot = miner->Snapshot();
    EXPECT_TRUE(snapshot.ok()) << snapshot.status();
    return std::make_tuple(FormatReport(*snapshot), miner->shed_events(),
                           std::move(admitted));
  };

  auto [serial_report, serial_shed, admitted] = run(1);
  auto [parallel_report, parallel_shed, parallel_admitted] = run(4);
  // The shed policy is deterministic: same arrivals → same sheds → same
  // snapshot, at every thread count.
  EXPECT_GT(serial_shed, 0u);
  EXPECT_EQ(serial_shed, parallel_shed);
  EXPECT_EQ(serial_report, parallel_report);
  EXPECT_EQ(admitted.size(), parallel_admitted.size());

  // Equivalence contract over the *admitted* arrivals verbatim: the bounded
  // snapshot is byte-identical to a batch mine of what was admitted.
  Miner batch(&toy, options.BatchEquivalent());
  auto batched = batch.Mine(problem, admitted);
  ASSERT_TRUE(batched.ok()) << batched.status();
  EXPECT_EQ(serial_report, FormatReport(*batched));
}

}  // namespace
}  // namespace granmine
