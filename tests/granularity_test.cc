#include "granmine/granularity/granularity.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

TEST(CivilCalendarTest, EpochIsKnown) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(CivilFromDays(0), (CivilDate{1970, 1, 1}));
  EXPECT_EQ(WeekdayFromDays(0), 3);  // Thursday
}

TEST(CivilCalendarTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1971, 1, 1), 365);
  EXPECT_EQ(DaysFromCivil(2000, 1, 1), 10957);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(CivilFromDays(10957), (CivilDate{2000, 1, 1}));
  // 2000-01-01 was a Saturday.
  EXPECT_EQ(WeekdayFromDays(10957), 5);
}

TEST(CivilCalendarTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(1972));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1970));
  EXPECT_EQ(DaysInMonth(1972, 2), 29);
  EXPECT_EQ(DaysInMonth(1970, 2), 28);
  EXPECT_EQ(DaysInMonth(1970, 12), 31);
}

TEST(CivilCalendarTest, RoundTripProperty) {
  Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t days = rng.Uniform(-200000, 200000);
    CivilDate date = CivilFromDays(days);
    EXPECT_EQ(DaysFromCivil(date.year, date.month, date.day), days);
    EXPECT_GE(date.month, 1);
    EXPECT_LE(date.month, 12);
    EXPECT_GE(date.day, 1);
    EXPECT_LE(date.day, DaysInMonth(date.year, date.month));
  }
}

TEST(CivilCalendarTest, GregorianEraIsPeriodic) {
  EXPECT_EQ(DaysFromCivil(2370, 1, 1) - DaysFromCivil(1970, 1, 1),
            kDaysPerEra);
  // The 400-year cycle preserves weekdays (kDaysPerEra divisible by 7).
  EXPECT_EQ(kDaysPerEra % 7, 0);
}

class GregorianDaysTest : public testing::Test {
 protected:
  GregorianDaysTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity& Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return *g;
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(GregorianDaysTest, DayTicks) {
  const Granularity& day = Get("day");
  EXPECT_EQ(day.TickContaining(0), 1);
  EXPECT_EQ(day.TickContaining(364), 365);
  EXPECT_EQ(day.TickContaining(-1), std::nullopt);
  EXPECT_EQ(day.TickHull(1), TimeSpan::Of(0, 0));
  EXPECT_TRUE(day.HasFullSupport());
}

TEST_F(GregorianDaysTest, WeekTicksAreMondayAnchored) {
  const Granularity& week = Get("week");
  // Tick 1 spans Mon 1969-12-29 .. Sun 1970-01-04 (days -3..3).
  EXPECT_EQ(week.TickHull(1), TimeSpan::Of(-3, 3));
  EXPECT_EQ(week.TickContaining(0), 1);
  EXPECT_EQ(week.TickContaining(4), 2);  // Mon 1970-01-05
}

TEST_F(GregorianDaysTest, MonthTicks) {
  const Granularity& month = Get("month");
  EXPECT_EQ(month.TickHull(1), TimeSpan::Of(0, 30));    // Jan 1970
  EXPECT_EQ(month.TickHull(2), TimeSpan::Of(31, 58));   // Feb 1970 (28 days)
  EXPECT_EQ(month.TickContaining(31), 2);
  EXPECT_EQ(month.TickContaining(58), 2);
  EXPECT_EQ(month.TickContaining(59), 3);
  EXPECT_EQ(month.TickContaining(-5), std::nullopt);
  // Feb 1972 is a leap February.
  Tick feb72 = (1972 - 1970) * 12 + 2;
  EXPECT_EQ(month.TickHull(feb72)->length(), 29);
}

TEST_F(GregorianDaysTest, YearTicks) {
  const Granularity& year = Get("year");
  EXPECT_EQ(year.TickHull(1)->length(), 365);  // 1970
  EXPECT_EQ(year.TickHull(3)->length(), 366);  // 1972 leap
  EXPECT_EQ(year.TickContaining(365), 2);
}

TEST_F(GregorianDaysTest, BusinessDays) {
  const Granularity& b_day = Get("b-day");
  // Day 0 = Thu, 1 = Fri, 2 = Sat, 3 = Sun, 4 = Mon.
  EXPECT_EQ(b_day.TickContaining(0), 1);
  EXPECT_EQ(b_day.TickContaining(1), 2);
  EXPECT_EQ(b_day.TickContaining(2), std::nullopt);
  EXPECT_EQ(b_day.TickContaining(3), std::nullopt);
  EXPECT_EQ(b_day.TickContaining(4), 3);
  EXPECT_EQ(b_day.TickHull(3), TimeSpan::Of(4, 4));
  EXPECT_FALSE(b_day.HasFullSupport());
}

TEST_F(GregorianDaysTest, WeekendDays) {
  const Granularity& weekend = Get("weekend-day");
  EXPECT_EQ(weekend.TickContaining(2), 1);  // Sat 1970-01-03
  EXPECT_EQ(weekend.TickContaining(3), 2);  // Sun
  EXPECT_EQ(weekend.TickContaining(4), std::nullopt);
  EXPECT_EQ(weekend.TickHull(3), TimeSpan::Of(9, 9));  // next Saturday
}

TEST_F(GregorianDaysTest, BusinessWeeks) {
  const Granularity& b_week = Get("b-week");
  // Week 1 = Mon 12-29..Sun 01-04; its business days are Thu(0) and Fri(1).
  EXPECT_EQ(b_week.TickHull(1), TimeSpan::Of(0, 1));
  // Week 2 = days 4..10, business part Mon..Fri = days 4..8.
  EXPECT_EQ(b_week.TickHull(2), TimeSpan::Of(4, 8));
  EXPECT_EQ(b_week.TickContaining(6), 2);
  EXPECT_EQ(b_week.TickContaining(9), std::nullopt);  // Saturday
  // The interval guarantee is conservative for group-by types.
  EXPECT_FALSE(b_week.ticks_are_intervals());
}

TEST_F(GregorianDaysTest, BusinessMonths) {
  const Granularity& b_month = Get("b-month");
  // Jan 1970: first b-day is Thu Jan 1 (day 0); last is Fri Jan 30 (day 29).
  EXPECT_EQ(b_month.TickHull(1), TimeSpan::Of(0, 29));
  EXPECT_EQ(b_month.TickContaining(0), 1);
  EXPECT_EQ(b_month.TickContaining(2), std::nullopt);  // Saturday
  std::vector<TimeSpan> extent;
  b_month.TickExtent(1, &extent);
  // Jan 1970 has 22 business days in 5 runs: Thu-Fri, then four Mon-Fri.
  ASSERT_EQ(extent.size(), 5u);
  EXPECT_EQ(extent.front(), TimeSpan::Of(0, 1));
  std::int64_t total = 0;
  for (const TimeSpan& piece : extent) total += piece.length();
  EXPECT_EQ(total, 22);
}

TEST_F(GregorianDaysTest, HolidaysShiftBusinessNumbering) {
  // Remove Fri 1970-01-02 (day tick 2).
  auto system = GranularitySystem::GregorianDays({CivilDate{1970, 1, 2}});
  const Granularity& b_day = *system->Find("b-day");
  EXPECT_EQ(b_day.TickContaining(0), 1);              // Thu Jan 1
  EXPECT_EQ(b_day.TickContaining(1), std::nullopt);   // holiday
  EXPECT_EQ(b_day.TickContaining(4), 2);              // Mon Jan 5
  EXPECT_EQ(b_day.TickHull(2), TimeSpan::Of(4, 4));
  EXPECT_FALSE(b_day.IsStrictlyPeriodic());
  EXPECT_GE(b_day.LastDeviantTick(), 1);
}

TEST_F(GregorianDaysTest, GroupedMonths) {
  // `quarter` ships in the standard family as Group(month, 3).
  const Granularity& quarter = Get("quarter");
  // Q1 1970 = Jan+Feb+Mar = 31+28+31 = 90 days.
  EXPECT_EQ(quarter.TickHull(1), TimeSpan::Of(0, 89));
  EXPECT_EQ(quarter.TickContaining(89), 1);
  EXPECT_EQ(quarter.TickContaining(90), 2);
  // Q4 ends with the year.
  EXPECT_EQ(quarter.TickHull(4)->last, Get("year").TickHull(1)->last);
  EXPECT_EQ(quarter.periodicity().ticks_per_period, 1600);
}

TEST_F(GregorianDaysTest, PeriodicityHoldsForAllTypes) {
  for (const char* name : {"day", "week", "month", "year", "b-day",
                           "weekend-day", "b-week", "b-month"}) {
    const Granularity& g = Get(name);
    const Granularity::Periodicity p = g.periodicity();
    ASSERT_GT(p.period, 0) << name;
    ASSERT_GT(p.ticks_per_period, 0) << name;
    Tick base = g.LastDeviantTick();
    for (Tick z : {base + 1, base + 2, base + 7, base + 40}) {
      std::optional<TimeSpan> a = g.TickHull(z);
      std::optional<TimeSpan> b = g.TickHull(z + p.ticks_per_period);
      ASSERT_TRUE(a.has_value() && b.has_value()) << name;
      EXPECT_EQ(b->first, a->first + p.period) << name << " tick " << z;
      EXPECT_EQ(b->last, a->last + p.period) << name << " tick " << z;
    }
  }
}

TEST_F(GregorianDaysTest, TickContainingMatchesHulls) {
  Rng rng(99);
  for (const char* name :
       {"day", "week", "month", "year", "b-day", "b-week", "b-month"}) {
    const Granularity& g = Get(name);
    for (int i = 0; i < 300; ++i) {
      TimePoint t = rng.Uniform(0, 100000);
      std::optional<Tick> z = g.TickContaining(t);
      if (!z.has_value()) continue;
      std::optional<TimeSpan> hull = g.TickHull(*z);
      ASSERT_TRUE(hull.has_value());
      EXPECT_TRUE(hull->Contains(t)) << name << " t=" << t;
      // Hull endpoints belong to the same tick.
      EXPECT_EQ(g.TickContaining(hull->first), *z) << name;
      EXPECT_EQ(g.TickContaining(hull->last), *z) << name;
    }
  }
}

TEST_F(GregorianDaysTest, HullsAreMonotone) {
  for (const char* name :
       {"day", "week", "month", "year", "b-day", "b-week", "b-month"}) {
    const Granularity& g = Get(name);
    std::optional<TimeSpan> prev = g.TickHull(1);
    for (Tick z = 2; z <= 200; ++z) {
      std::optional<TimeSpan> cur = g.TickHull(z);
      ASSERT_TRUE(cur.has_value());
      EXPECT_GT(cur->first, prev->last) << name << " tick " << z;
      prev = cur;
    }
  }
}

TEST_F(GregorianDaysTest, SearchHelpers) {
  const Granularity& b_day = Get("b-day");
  // Day 2 is a Saturday; the first b-day ending at-or-after it is Monday
  // day 4, i.e., tick 3.
  EXPECT_EQ(FirstTickEndingAtOrAfter(b_day, 2), 3);
  EXPECT_EQ(FirstTickEndingAtOrAfter(b_day, 0), 1);
  EXPECT_EQ(LastTickStartingAtOrBefore(b_day, 2), 2);  // Fri day 1 = tick 2
  EXPECT_EQ(LastTickStartingAtOrBefore(b_day, -1), std::nullopt);
  const Granularity& month = Get("month");
  EXPECT_EQ(FirstTickEndingAtOrAfter(month, 31), 2);
  EXPECT_EQ(LastTickStartingAtOrBefore(month, 30), 1);
}

TEST_F(GregorianDaysTest, TickDifferenceSemantics) {
  const Granularity& day = Get("day");
  const Granularity& b_day = Get("b-day");
  EXPECT_EQ(TickDifference(day, 0, 10), 10);
  EXPECT_EQ(TickDifference(b_day, 0, 4), 2);  // Thu -> Mon = 2 b-days apart
  EXPECT_EQ(TickDifference(b_day, 0, 2), std::nullopt);  // Saturday
}

TEST(SecondsGregorianTest, SubdayTypes) {
  auto system = GranularitySystem::Gregorian();
  const Granularity& second = *system->Find("second");
  const Granularity& minute = *system->Find("minute");
  const Granularity& hour = *system->Find("hour");
  const Granularity& day = *system->Find("day");
  EXPECT_EQ(second.TickContaining(0), 1);
  EXPECT_EQ(minute.TickContaining(59), 1);
  EXPECT_EQ(minute.TickContaining(60), 2);
  EXPECT_EQ(hour.TickHull(1), TimeSpan::Of(0, 3599));
  EXPECT_EQ(day.TickHull(1), TimeSpan::Of(0, 86399));
  EXPECT_EQ(day.TickContaining(86400), 2);
}

TEST(SyntheticTest, GappedToyType) {
  GranularitySystem system;
  // Period 10: tick A = [0,2], tick B = [5,6]; gaps elsewhere.
  const Granularity* toy = system.AddSynthetic(
      "toy", 10, {TimeSpan::Of(0, 2), TimeSpan::Of(5, 6)});
  EXPECT_EQ(toy->TickContaining(0), 1);
  EXPECT_EQ(toy->TickContaining(2), 1);
  EXPECT_EQ(toy->TickContaining(3), std::nullopt);
  EXPECT_EQ(toy->TickContaining(5), 2);
  EXPECT_EQ(toy->TickContaining(10), 3);
  EXPECT_EQ(toy->TickContaining(15), 4);
  EXPECT_EQ(toy->TickHull(3), TimeSpan::Of(10, 12));
  EXPECT_EQ(toy->TickHull(4), TimeSpan::Of(15, 16));
  EXPECT_FALSE(toy->HasFullSupport());
  EXPECT_EQ(toy->periodicity().period, 10);
  EXPECT_EQ(toy->periodicity().ticks_per_period, 2);
}

TEST(SyntheticTest, FullSupportDetection) {
  GranularitySystem system;
  const Granularity* tiled = system.AddSynthetic(
      "tiled", 6, {TimeSpan::Of(0, 1), TimeSpan::Of(2, 5)});
  EXPECT_TRUE(tiled->HasFullSupport());
  const Granularity* gapped =
      system.AddSynthetic("gapped", 6, {TimeSpan::Of(0, 4)});
  EXPECT_FALSE(gapped->HasFullSupport());
}

TEST(SyntheticTest, OriginShiftsEverything) {
  GranularitySystem system;
  const Granularity* toy =
      system.AddSynthetic("shifted", 5, {TimeSpan::Of(0, 4)}, /*origin=*/100);
  EXPECT_EQ(toy->TickContaining(99), std::nullopt);
  EXPECT_EQ(toy->TickContaining(100), 1);
  EXPECT_EQ(toy->TickHull(2), TimeSpan::Of(105, 109));
}

}  // namespace
}  // namespace granmine
