// The persistence subsystem's contract suite (docs/persistence.md):
//
//  - container: header/section/trailer framing roundtrips, unknown section
//    types are forward-skippable, truncation is Invalid with a byte offset;
//  - warm start: FreezeFromImage installs sealed caches identical to a cold
//    Freeze and refuses an image from a different family;
//  - stream checkpoint/restore: the crash-recovery differential — kill the
//    session at EVERY checkpoint boundary, restore, finish the stream, and
//    both the report and the next checkpoint's bytes must be identical to an
//    uninterrupted run, at 1 and 4 threads;
//  - crash safety: an abandoned or governor-cancelled write leaves no
//    partial file; checkpoint I/O is charged to the governor.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/persist/bytes.h"
#include "granmine/persist/codecs.h"
#include "granmine/persist/snapshot.h"
#include "granmine/persist/stream_codec.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

using persist::Section;
using persist::SectionType;
using persist::SnapshotIoOptions;
using persist::SnapshotReader;
using persist::SnapshotWriter;
using persist::SpanSource;
using persist::VectorSink;

std::string TempPath(const char* name) {
  return testing::TempDir() + "granmine_persist_" + name;
}

bool FileExists(const std::string& path) {
  if (std::FILE* file = std::fopen(path.c_str(), "rb"); file != nullptr) {
    std::fclose(file);
    return true;
  }
  return false;
}

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// ---------------------------------------------------------------------------
// Container framing.

TEST(SnapshotContainerTest, RoundtripsSectionsInOrder) {
  VectorSink sink;
  SnapshotWriter writer(&sink);
  ASSERT_TRUE(writer.WriteHeader().ok());
  const std::vector<std::uint8_t> meta = Bytes({1, 2, 3, 4, 5});
  const std::vector<std::uint8_t> empty;
  ASSERT_TRUE(writer.WriteSection(SectionType::kMeta, meta).ok());
  ASSERT_TRUE(writer.WriteSection(SectionType::kEventSequence, empty).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.sections_written(), 2u);

  SpanSource source(sink.buffer());
  Result<std::vector<Section>> sections = persist::ReadAllSections(&source);
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_EQ(sections->size(), 2u);
  EXPECT_EQ((*sections)[0].type, SectionType::kMeta);
  EXPECT_EQ((*sections)[0].payload, meta);
  EXPECT_EQ((*sections)[1].type, SectionType::kEventSequence);
  EXPECT_TRUE((*sections)[1].payload.empty());
  // Payload offsets are file coordinates: past the 16-byte header and the
  // 20-byte frame.
  EXPECT_EQ((*sections)[0].payload_offset, 16u + 20u);
}

TEST(SnapshotContainerTest, UnknownSectionTypeIsSkippable) {
  VectorSink sink;
  SnapshotWriter writer(&sink);
  ASSERT_TRUE(writer.WriteHeader().ok());
  const std::vector<std::uint8_t> future = Bytes({42, 42, 42});
  const std::vector<std::uint8_t> known = Bytes({7});
  ASSERT_TRUE(
      writer.WriteSection(static_cast<SectionType>(999), future).ok());
  ASSERT_TRUE(writer.WriteSection(SectionType::kMeta, known).ok());
  ASSERT_TRUE(writer.Finish().ok());

  // A reader that does not understand type 999 still CRC-verifies and steps
  // over it, and delivers the section after it intact.
  SpanSource source(sink.buffer());
  Result<std::vector<Section>> sections = persist::ReadAllSections(&source);
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_EQ(sections->size(), 2u);
  EXPECT_EQ(static_cast<std::uint32_t>((*sections)[0].type), 999u);
  EXPECT_EQ((*sections)[1].payload, known);
}

TEST(SnapshotContainerTest, MissingTrailerIsTruncationWithOffset) {
  VectorSink sink;
  SnapshotWriter writer(&sink);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.WriteSection(SectionType::kMeta, Bytes({9, 9})).ok());
  // No Finish(): the file ends between sections, which must read as
  // truncation, not as a clean snapshot.
  SpanSource source(sink.buffer());
  Result<std::vector<Section>> sections = persist::ReadAllSections(&source);
  ASSERT_FALSE(sections.ok());
  EXPECT_EQ(sections.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sections.status().message().find("offset"), std::string::npos)
      << sections.status();
}

TEST(SnapshotContainerTest, BadMagicAndBadVersionAreDistinguished) {
  VectorSink sink;
  SnapshotWriter writer(&sink);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.Finish().ok());

  std::vector<std::uint8_t> bad_magic = sink.buffer();
  bad_magic[0] ^= 0xFF;
  SpanSource magic_source(bad_magic);
  SnapshotReader magic_reader(&magic_source);
  EXPECT_EQ(magic_reader.ReadHeader().code(), StatusCode::kInvalidArgument);

  std::vector<std::uint8_t> bad_version = sink.buffer();
  bad_version[8] = 0xFE;  // little-endian version field
  SpanSource version_source(bad_version);
  SnapshotReader version_reader(&version_source);
  EXPECT_EQ(version_reader.ReadHeader().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Section codecs.

TEST(CodecTest, EventSequenceRoundtrips) {
  EventSequence sequence;
  sequence.Add(Event{3, 100});
  sequence.Add(Event{1, 100});
  sequence.Add(Event{0, -7});
  const std::vector<std::uint8_t> payload =
      persist::EncodeEventSequence(sequence);
  Section section;
  section.type = SectionType::kEventSequence;
  section.payload = payload;
  Result<EventSequence> decoded = persist::DecodeEventSequence(section);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(decoded->events()[i].type, sequence.events()[i].type);
    EXPECT_EQ(decoded->events()[i].time, sequence.events()[i].time);
  }
}

TEST(CodecTest, FrozenImageRoundtripsAndWarmStartEqualsColdFreeze) {
  // Cold system: freeze computes the sealed caches from the definitions.
  GranularitySystem cold;
  const Granularity* unit = cold.AddUniform("unit", 1);
  const Granularity* triple = cold.AddUniform("triple", 3);
  ASSERT_NE(unit, nullptr);
  ASSERT_NE(triple, nullptr);
  ASSERT_TRUE(cold.Freeze().ok());
  Result<FrozenSystemImage> image = cold.ExportFrozenImage();
  ASSERT_TRUE(image.ok()) << image.status();

  // Codec roundtrip.
  Section section;
  section.type = SectionType::kFrozenSystemImage;
  section.payload = persist::EncodeFrozenSystemImage(*image);
  Result<FrozenSystemImage> decoded =
      persist::DecodeFrozenSystemImage(section);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  // Warm system: same definitions, caches installed from the image.
  GranularitySystem warm;
  const Granularity* warm_unit = warm.AddUniform("unit", 1);
  const Granularity* warm_triple = warm.AddUniform("triple", 3);
  ASSERT_TRUE(warm.FreezeFromImage(*decoded).ok());
  ASSERT_TRUE(warm.frozen());

  for (std::int64_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(cold.tables().MinSize(*unit, k),
              warm.tables().MinSize(*warm_unit, k));
    EXPECT_EQ(cold.tables().MaxSize(*triple, k),
              warm.tables().MaxSize(*warm_triple, k));
    EXPECT_EQ(cold.tables().MinGap(*triple, k),
              warm.tables().MinGap(*warm_triple, k));
  }
  EXPECT_EQ(cold.coverage().Covers(*triple, *unit),
            warm.coverage().Covers(*warm_triple, *warm_unit));
  EXPECT_EQ(cold.coverage().Covers(*unit, *triple),
            warm.coverage().Covers(*warm_unit, *warm_triple));
}

TEST(CodecTest, WarmStartRefusesImageFromDifferentFamily) {
  GranularitySystem origin;
  ASSERT_NE(origin.AddUniform("unit", 1), nullptr);
  ASSERT_TRUE(origin.Freeze().ok());
  Result<FrozenSystemImage> image = origin.ExportFrozenImage();
  ASSERT_TRUE(image.ok());

  // Same name, different definition: the spot check must catch that the
  // sealed tables disagree with this system's semantics.
  GranularitySystem different;
  ASSERT_NE(different.AddUniform("unit", 2), nullptr);
  Status mismatch = different.FreezeFromImage(*image);
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument) << mismatch;
  EXPECT_FALSE(different.frozen());

  // Different family shape: refused before any table comparison.
  GranularitySystem renamed;
  ASSERT_NE(renamed.AddUniform("other", 1), nullptr);
  EXPECT_EQ(renamed.FreezeFromImage(*image).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine snapshot / warm start.

TEST(EngineSnapshotTest, SaveThenFromSnapshotServesIdenticalResults) {
  const std::string path = TempPath("engine_snapshot.bin");
  std::remove(path.c_str());

  EventSequence sequence;
  for (int i = 0; i < 8; ++i) {
    sequence.Add(Event{static_cast<EventTypeId>(i % 2), i * 3600});
  }

  Result<std::unique_ptr<Engine>> cold = Engine::CreateGregorian();
  ASSERT_TRUE(cold.ok());
  SnapshotSaveOptions save;
  save.sequence = &sequence;
  ASSERT_TRUE((*cold)->SaveSnapshot(path, save).ok());

  EventSequence restored_sequence;
  Result<std::unique_ptr<Engine>> warm = Engine::FromSnapshot(
      GranularitySystem::Gregorian(), path, EngineOptions{},
      &restored_sequence);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE((*warm)->frozen());
  ASSERT_EQ(restored_sequence.size(), sequence.size());

  // The warm engine's sealed caches answer identically to the cold one's.
  const GranularitySystem& a = *(*cold)->system();
  const GranularitySystem& b = *(*warm)->system();
  ASSERT_EQ(a.family().size(), b.family().size());
  for (std::size_t g = 0; g < a.family().size(); ++g) {
    for (std::int64_t k : {1, 2, 7, 30}) {
      EXPECT_EQ(a.tables().MinSize(*a.family()[g], k),
                b.tables().MinSize(*b.family()[g], k));
      EXPECT_EQ(a.tables().MaxSize(*a.family()[g], k),
                b.tables().MaxSize(*b.family()[g], k));
      EXPECT_EQ(a.tables().MinGap(*a.family()[g], k),
                b.tables().MinGap(*b.family()[g], k));
    }
  }
  std::remove(path.c_str());
}

TEST(EngineSnapshotTest, FromSnapshotWithoutImageSectionIsInvalid) {
  const std::string path = TempPath("no_image.bin");
  {
    Result<std::unique_ptr<persist::AtomicFileSink>> sink =
        persist::AtomicFileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    SnapshotWriter writer(sink->get());
    ASSERT_TRUE(writer.WriteHeader().ok());
    ASSERT_TRUE(writer.Finish().ok());
    ASSERT_TRUE((*sink)->Commit().ok());
  }
  Result<std::unique_ptr<Engine>> warm =
      Engine::FromSnapshot(GranularitySystem::Gregorian(), path);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash safety and governed I/O.

TEST(AtomicSinkTest, AbandonedWriteLeavesNoFile) {
  const std::string path = TempPath("abandoned.bin");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<persist::AtomicFileSink>> sink =
        persist::AtomicFileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    const std::vector<std::uint8_t> data = Bytes({1, 2, 3});
    ASSERT_TRUE((*sink)->Append(data).ok());
    // No Commit: destruction abandons the write.
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(AtomicSinkTest, AbandonedWritePreservesPreviousFile) {
  const std::string path = TempPath("previous.bin");
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("previous checkpoint", file);
    std::fclose(file);
  }
  {
    Result<std::unique_ptr<persist::AtomicFileSink>> sink =
        persist::AtomicFileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    const std::vector<std::uint8_t> data = Bytes({0xDE, 0xAD});
    ASSERT_TRUE((*sink)->Append(data).ok());
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, n), "previous checkpoint");
  std::remove(path.c_str());
}

TEST(GovernedIoTest, WriterChargesStepsPerPayloadBlock) {
  GovernorLimits limits;
  limits.max_steps = 1'000'000;
  limits.check_stride = 1;  // flush every charge so steps() is exact
  ResourceGovernor governor(limits);
  VectorSink sink;
  SnapshotWriter writer(&sink, SnapshotIoOptions{&governor});
  ASSERT_TRUE(writer.WriteHeader().ok());
  const std::vector<std::uint8_t> payload(64 * 1024, 0xAB);
  ASSERT_TRUE(writer.WriteSection(SectionType::kMeta, payload).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // 64 KiB at one step per 4096 bytes = at least 16 steps.
  EXPECT_GE(governor.steps(),
            payload.size() / persist::kGovernedBytesPerStep);
}

TEST(GovernedIoTest, ExhaustedBudgetCancelsWriteWithoutPartialFile) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 4, unit)).ok());
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.reference_type = 0;
  problem.allowed.assign(2, {});
  problem.allowed[1] = {0, 1, 2, 3};
  Result<OnlineMiner> miner =
      OnlineMiner::Create(&toy, problem, OnlineMinerOptions{});
  ASSERT_TRUE(miner.ok());
  // Enough resident state that the checkpoint payload exceeds the
  // bytes-per-step quantum — a sub-quantum write charges no step and
  // legitimately cannot trip the budget.
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(miner->Ingest(Event{static_cast<EventTypeId>(i % 4), i}).ok());
  }

  const std::string path = TempPath("cancelled.bin");
  std::remove(path.c_str());
  GovernorLimits limits;
  limits.max_steps = 1;
  limits.check_stride = 1;  // trips on the first flushed charge
  ResourceGovernor governor(limits);
  Status refused = persist::SaveStreamCheckpoint(*miner, path,
                                                 SnapshotIoOptions{&governor});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted) << refused;
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Stream checkpoint/restore differential. Same toy system, structure and
// deterministic arrival process as stream_test.cc, so the two gates certify
// the same session shape.

std::string FormatReport(const MiningReport& report) {
  std::string out;
  char buffer[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out += buffer;
  };
  append("roots=%zu events=%zu/%zu cand=%llu/%llu runs=%llu configs=%llu\n",
         report.total_roots, report.events_before,
         report.events_after_reduction,
         static_cast<unsigned long long>(report.candidates_before),
         static_cast<unsigned long long>(report.candidates_after_screening),
         static_cast<unsigned long long>(report.tag_runs),
         static_cast<unsigned long long>(report.matcher_configurations));
  const MiningCompleteness& c = report.completeness;
  append("complete=%d stop=%d confirmed=%llu refuted=%llu unknown=%llu\n",
         c.complete ? 1 : 0, static_cast<int>(c.stop),
         static_cast<unsigned long long>(c.confirmed),
         static_cast<unsigned long long>(c.refuted),
         static_cast<unsigned long long>(c.unknown));
  for (const DiscoveredType& solution : report.solutions) {
    out += "sol";
    for (EventTypeId type : solution.assignment) {
      append(" %d", type);
    }
    append(" matched=%zu freq=%.17g\n", solution.matched_roots,
           solution.frequency);
  }
  return out;
}

class CheckpointTest : public testing::Test {
 protected:
  static constexpr int kTypeCount = 6;

  CheckpointTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 8, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 8, unit_)).ok());
    std::uint64_t state = 0x51ed2701afe4c9b3ULL;
    TimePoint t = 1;
    for (int i = 0; i < 48; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      t += static_cast<TimePoint>((state >> 33) % 2);
      events_.push_back(
          Event{static_cast<EventTypeId>((state >> 13) % kTypeCount), t});
    }
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    problem_.allowed.assign(3, {});
    problem_.allowed[1] = {0, 1, 2, 3, 4, 5};
    problem_.allowed[2] = {0, 1, 2, 3, 4, 5};
  }

  OnlineMinerOptions Options(int threads) const {
    OnlineMinerOptions options;
    options.num_threads = threads;
    options.retention = 24;  // evictions happen during the run
    return options;
  }

  OnlineMiner MakeStream(int threads) {
    Result<OnlineMiner> miner =
        OnlineMiner::Create(&toy_, problem_, Options(threads));
    EXPECT_TRUE(miner.ok()) << miner.status();
    return std::move(*miner);
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  std::vector<Event> events_;
  DiscoveryProblem problem_;
};

// The acceptance differential: for EVERY checkpoint boundary p, kill the
// session right after its checkpoint (discard the miner — that is what a
// crash does), restore from the file, finish the stream, and compare both
// the final report and the final checkpoint bytes against an uninterrupted
// run. At 1 and 4 threads.
TEST_F(CheckpointTest, KillAtEveryCheckpointThenRestoreIsByteIdentical) {
  for (int threads : {1, 4}) {
    // Uninterrupted reference run.
    OnlineMiner uninterrupted = MakeStream(threads);
    for (const Event& event : events_) {
      ASSERT_TRUE(uninterrupted.Ingest(event).ok());
    }
    Result<MiningReport> want_report = uninterrupted.Snapshot();
    ASSERT_TRUE(want_report.ok());
    const std::string want = FormatReport(*want_report);
    const std::vector<std::uint8_t> want_bytes =
        persist::StreamSessionCodec::Encode(uninterrupted);

    const std::string path = TempPath("kill_restore.bin");
    for (std::size_t p = 0; p <= events_.size(); ++p) {
      std::remove(path.c_str());
      {
        OnlineMiner first = MakeStream(threads);
        for (std::size_t i = 0; i < p; ++i) {
          ASSERT_TRUE(first.Ingest(events_[i]).ok());
        }
        ASSERT_TRUE(persist::SaveStreamCheckpoint(first, path).ok());
        // `first` dies here: everything after the checkpoint is lost, as in
        // a crash.
      }
      Result<OnlineMiner> restored = persist::RestoreStreamCheckpoint(
          &toy_, problem_, Options(threads), path);
      ASSERT_TRUE(restored.ok())
          << "threads=" << threads << " p=" << p << ": " << restored.status();
      for (std::size_t i = p; i < events_.size(); ++i) {
        ASSERT_TRUE(restored->Ingest(events_[i]).ok());
      }
      Result<MiningReport> got_report = restored->Snapshot();
      ASSERT_TRUE(got_report.ok());
      ASSERT_EQ(want, FormatReport(*got_report))
          << "threads=" << threads << " checkpoint at prefix " << p;
      ASSERT_EQ(want_bytes, persist::StreamSessionCodec::Encode(*restored))
          << "threads=" << threads << " checkpoint at prefix " << p;
    }
    std::remove(path.c_str());
  }
}

// Snapshots taken mid-stream after a restore must also match: restore at
// one boundary, then compare reports at every subsequent prefix against a
// fresh uninterrupted session over the same prefix.
TEST_F(CheckpointTest, RestoredSessionMatchesAtEverySubsequentPrefix) {
  const std::size_t kCheckpointAt = 17;
  const std::string path = TempPath("prefix_differential.bin");
  std::remove(path.c_str());
  {
    OnlineMiner first = MakeStream(1);
    for (std::size_t i = 0; i < kCheckpointAt; ++i) {
      ASSERT_TRUE(first.Ingest(events_[i]).ok());
    }
    ASSERT_TRUE(persist::SaveStreamCheckpoint(first, path).ok());
  }
  Result<OnlineMiner> restored =
      persist::RestoreStreamCheckpoint(&toy_, problem_, Options(1), path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  OnlineMiner fresh = MakeStream(1);
  for (std::size_t i = 0; i < kCheckpointAt; ++i) {
    ASSERT_TRUE(fresh.Ingest(events_[i]).ok());
  }
  for (std::size_t i = kCheckpointAt; i < events_.size(); ++i) {
    ASSERT_TRUE(restored->Ingest(events_[i]).ok());
    ASSERT_TRUE(fresh.Ingest(events_[i]).ok());
    Result<MiningReport> got = restored->Snapshot();
    Result<MiningReport> want = fresh.Snapshot();
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(FormatReport(*want), FormatReport(*got)) << "prefix " << i + 1;
  }
  std::remove(path.c_str());
}

// Checkpoint bytes are canonical: the same session state encodes to the
// same bytes regardless of thread count (unordered frontier sets are
// serialized in sorted order).
TEST_F(CheckpointTest, CheckpointBytesAreThreadCountInvariant) {
  std::vector<std::uint8_t> serial_bytes;
  for (int threads : {1, 4}) {
    OnlineMiner miner = MakeStream(threads);
    for (const Event& event : events_) {
      ASSERT_TRUE(miner.Ingest(event).ok());
    }
    std::vector<std::uint8_t> bytes =
        persist::StreamSessionCodec::Encode(miner);
    if (threads == 1) {
      serial_bytes = std::move(bytes);
    } else {
      EXPECT_EQ(serial_bytes, bytes);
    }
  }
}

TEST_F(CheckpointTest, RestoreRefusesMismatchedSessionGeometry) {
  const std::string path = TempPath("geometry.bin");
  std::remove(path.c_str());
  {
    OnlineMiner miner = MakeStream(1);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(miner.Ingest(events_[static_cast<std::size_t>(i)]).ok());
    }
    ASSERT_TRUE(persist::SaveStreamCheckpoint(miner, path).ok());
  }
  // Same problem, different tolerance: the fingerprint must refuse.
  OnlineMinerOptions skewed = Options(1);
  skewed.tolerance = 5;
  Result<OnlineMiner> mismatch =
      persist::RestoreStreamCheckpoint(&toy_, problem_, skewed, path);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument)
      << mismatch.status();

  // A snapshot that is valid but carries no stream session is also refused.
  const std::string plain = TempPath("plain_snapshot.bin");
  {
    Result<std::unique_ptr<persist::AtomicFileSink>> sink =
        persist::AtomicFileSink::Open(plain);
    ASSERT_TRUE(sink.ok());
    SnapshotWriter writer(sink->get());
    ASSERT_TRUE(writer.WriteHeader().ok());
    ASSERT_TRUE(writer.Finish().ok());
    ASSERT_TRUE((*sink)->Commit().ok());
  }
  Result<OnlineMiner> missing =
      persist::RestoreStreamCheckpoint(&toy_, problem_, Options(1), plain);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  std::remove(plain.c_str());
}

}  // namespace
}  // namespace granmine
