// Open upper bounds ([m, inf] TCGs) and the matcher's frontier-boundedness
// guarantee (the practical face of Theorem 4's (|V|K)^p remark).

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

class UnboundedTest : public testing::Test {
 protected:
  UnboundedTest() { unit_ = toy_.AddUniform("unit", 1); }
  GranularitySystem toy_;
  const Granularity* unit_;
};

TEST_F(UnboundedTest, TcgSemantics) {
  Tcg at_least_two = Tcg::Of(2, kInfinity, unit_);
  EXPECT_FALSE(Satisfies(at_least_two, 10, 11));
  EXPECT_TRUE(Satisfies(at_least_two, 10, 12));
  EXPECT_TRUE(Satisfies(at_least_two, 10, 1000000));
}

TEST_F(UnboundedTest, PropagationComposesOpenBounds) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(2, kInfinity, unit_)).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(3, 5, unit_)).ok());
  ConstraintPropagator propagator(&toy_.tables(), &toy_.coverage());
  auto result = propagator.Propagate(s);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  Bounds b = result->GetBounds(unit_, x0, x2);
  EXPECT_EQ(b.lo, 5);
  EXPECT_GE(b.hi, kInfinity);
}

TEST_F(UnboundedTest, ExactCheckerHandlesOpenBounds) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(3, kInfinity, unit_)).ok());
  ExactOptions options;
  options.horizon_span = 50;
  ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(), options);
  auto result = checker.Check(s);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  EXPECT_GE(result->witness[x1] - result->witness[x0], 3);
}

TEST_F(UnboundedTest, TagMatchesOpenBounds) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(3, kInfinity, unit_)).ok());
  auto built = BuildTagForStructure(s);
  ASSERT_TRUE(built.ok()) << built.status();
  TagMatcher matcher(&built->tag);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1}, 2);
  EventSequence close;
  close.Add(0, 10);
  close.Add(1, 12);
  EXPECT_FALSE(matcher.Accepts(close.View(), symbols));
  EventSequence far;
  far.Add(0, 10);
  far.Add(1, 500);
  EXPECT_TRUE(matcher.Accepts(far.View(), symbols));
  // Agrees with the oracle.
  EXPECT_EQ(OccursBruteForce(s, {0, 1}, close.View()), false);
  EXPECT_EQ(OccursBruteForce(s, {0, 1}, far.View()), true);
}

TEST_F(UnboundedTest, MiningWithOpenBounds) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(5, kInfinity, unit_)).ok());
  EventSequence seq;
  for (int i = 0; i < 6; ++i) {
    seq.Add(0, i * 100);
    seq.Add(1, i * 100 + 7);
  }
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.min_confidence = 0.9;
  problem.reference_type = 0;
  Miner miner(&toy_);
  auto report = miner.Mine(problem, seq);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->solutions.empty());
}

TEST_F(UnboundedTest, FrontierStaysBoundedOnLongNonMatches) {
  // A chain TAG over a long random sequence that never matches: the expiry
  // prune must keep the live frontier small and the total work linear-ish.
  EventStructure s;
  for (int v = 0; v < 4; ++v) s.AddVariable("X" + std::to_string(v));
  for (int v = 1; v < 4; ++v) {
    ASSERT_TRUE(s.AddConstraint(v - 1, v, Tcg::Of(0, 3, unit_)).ok());
  }
  auto built = BuildTagForStructure(s);
  ASSERT_TRUE(built.ok());
  TagMatcher matcher(&built->tag);
  // Types 0..2 only — variable X3 needs type 3, which never occurs.
  Rng rng(3);
  EventSequence seq;
  TimePoint t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.Uniform(1, 2);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, 2)), t);
  }
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2, 3}, 4);
  MatchStats stats;
  EXPECT_FALSE(matcher.Accepts(seq.View(), symbols, {}, &stats));
  // Without expiry pruning the frontier would approach the number of events;
  // with it, it stays within the (|V|K)-ish envelope.
  EXPECT_LT(stats.peak_frontier, 200u);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST_F(UnboundedTest, OpenBoundGuardsNeverExpire) {
  // With an open upper bound the root config must survive arbitrarily long
  // gaps (no guard can expire), and a late partner must still match.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(2, kInfinity, unit_)).ok());
  auto built = BuildTagForStructure(s);
  ASSERT_TRUE(built.ok());
  TagMatcher matcher(&built->tag);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1}, 3);
  EventSequence seq;
  seq.Add(0, 0);
  for (int i = 1; i <= 5000; ++i) seq.Add(2, i * 10);  // noise for ages
  seq.Add(1, 60000);
  MatchStats stats;
  EXPECT_TRUE(matcher.Accepts(seq.View(), symbols, {}, &stats));
}

}  // namespace
}  // namespace granmine
