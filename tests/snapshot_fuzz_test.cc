// Reader-robustness fuzz for the persistence subsystem: every decode path
// must return a three-valued Status — kInvalidArgument (with a byte offset)
// for corruption, kUnsupported for version skew, never a crash — under
//
//  - truncation at every (strided) prefix of the container,
//  - single-bit flips across the container (the CRC32C layer),
//  - single-bit flips and truncation of raw section payloads fed straight
//    to the codecs (the Decoder bounds/plausibility layer, which a CRC
//    collision or a hostile writer could reach),
//  - section reordering, unknown section types, and version skew.
//
// Runs under ASAN/UBSAN and TSAN via the ctest "sanitizer" label: a decoder
// walking out of bounds is a sanitizer failure even when it happens not to
// crash a plain build.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/persist/bytes.h"
#include "granmine/persist/codecs.h"
#include "granmine/persist/snapshot.h"
#include "granmine/persist/stream_codec.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

using persist::Section;
using persist::SectionType;
using persist::SnapshotReader;
using persist::SnapshotWriter;
using persist::SpanSource;
using persist::VectorSink;

// A decode failure must be a *judgment* about the bytes, not an accident:
// corrupt (Invalid) or version skew (Unsupported). Anything else —
// Internal, NotFound, a sanitizer abort — is a reader bug.
void ExpectCleanFailure(const Status& status, const std::string& context) {
  EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument ||
              status.code() == StatusCode::kUnsupported)
      << context << ": " << status;
  if (status.code() == StatusCode::kInvalidArgument) {
    EXPECT_NE(status.message().find("offset"), std::string::npos)
        << context << ": corruption Status must carry a byte offset: "
        << status;
  }
}

// Shared corpus: one snapshot carrying every section type, built over a
// real session so the stream payload has live frontiers to corrupt.
class SnapshotFuzzTest : public testing::Test {
 protected:
  SnapshotFuzzTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 8, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 8, unit_)).ok());
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    problem_.allowed.assign(3, {});
    problem_.allowed[1] = {0, 1, 2, 3};
    problem_.allowed[2] = {0, 1, 2, 3};

    EXPECT_TRUE(toy_.Freeze().ok());
    Result<FrozenSystemImage> image = toy_.ExportFrozenImage();
    EXPECT_TRUE(image.ok());
    image_payload_ = persist::EncodeFrozenSystemImage(*image);

    EventSequence sequence;
    for (int i = 0; i < 16; ++i) {
      sequence.Add(Event{static_cast<EventTypeId>(i % 4), i});
    }
    sequence_payload_ = persist::EncodeEventSequence(sequence);

    OnlineMiner miner = MakeMiner();
    std::uint64_t state = 0xfeedface12345678ULL;
    TimePoint t = 1;
    for (int i = 0; i < 40; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      t += static_cast<TimePoint>((state >> 33) % 2);
      EXPECT_TRUE(
          miner.Ingest(Event{static_cast<EventTypeId>((state >> 13) % 4), t})
              .ok());
    }
    stream_payload_ = persist::StreamSessionCodec::Encode(miner);

    VectorSink sink;
    SnapshotWriter writer(&sink);
    EXPECT_TRUE(writer.WriteHeader().ok());
    EXPECT_TRUE(
        writer.WriteSection(SectionType::kFrozenSystemImage, image_payload_)
            .ok());
    EXPECT_TRUE(
        writer.WriteSection(SectionType::kEventSequence, sequence_payload_)
            .ok());
    EXPECT_TRUE(
        writer.WriteSection(SectionType::kStreamSession, stream_payload_)
            .ok());
    const std::vector<std::uint8_t> meta = {'f', 'u', 'z', 'z'};
    EXPECT_TRUE(writer.WriteSection(SectionType::kMeta, meta).ok());
    EXPECT_TRUE(
        writer.WriteSection(static_cast<SectionType>(999), meta).ok());
    EXPECT_TRUE(writer.Finish().ok());
    snapshot_ = sink.TakeBuffer();
  }

  OnlineMiner MakeMiner() {
    Result<OnlineMiner> miner =
        OnlineMiner::Create(&toy_, problem_, OnlineMinerOptions{});
    EXPECT_TRUE(miner.ok()) << miner.status();
    return std::move(*miner);
  }

  // Runs the full consumer pipeline over container bytes: framing, then
  // every codec a real reader would invoke on the sections it finds. The
  // return value only says whether everything succeeded; the point is that
  // every failure is a clean one.
  void DrivePipeline(std::span<const std::uint8_t> bytes,
                     const std::string& context) {
    SpanSource source(bytes);
    Result<std::vector<Section>> sections =
        persist::ReadAllSections(&source);
    if (!sections.ok()) {
      ExpectCleanFailure(sections.status(), context + " [container]");
      return;
    }
    for (const Section& section : *sections) {
      switch (section.type) {
        case SectionType::kFrozenSystemImage: {
          Result<FrozenSystemImage> image =
              persist::DecodeFrozenSystemImage(section);
          if (!image.ok()) {
            ExpectCleanFailure(image.status(), context + " [image]");
          }
          break;
        }
        case SectionType::kEventSequence: {
          Result<EventSequence> sequence =
              persist::DecodeEventSequence(section);
          if (!sequence.ok()) {
            ExpectCleanFailure(sequence.status(), context + " [sequence]");
          }
          break;
        }
        case SectionType::kStreamSession: {
          OnlineMiner miner = MakeMiner();
          Status installed =
              persist::StreamSessionCodec::Decode(section, &miner);
          if (!installed.ok()) {
            ExpectCleanFailure(installed, context + " [stream]");
          }
          break;
        }
        default:
          break;  // kMeta / unknown: skippable by design
      }
    }
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  DiscoveryProblem problem_;
  std::vector<std::uint8_t> image_payload_;
  std::vector<std::uint8_t> sequence_payload_;
  std::vector<std::uint8_t> stream_payload_;
  std::vector<std::uint8_t> snapshot_;
};

TEST_F(SnapshotFuzzTest, IntactCorpusDecodesEndToEnd) {
  SpanSource source(snapshot_);
  Result<std::vector<Section>> sections = persist::ReadAllSections(&source);
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_EQ(sections->size(), 5u);
  DrivePipeline(snapshot_, "intact");
}

TEST_F(SnapshotFuzzTest, TruncationAtEveryPrefixFailsCleanly) {
  // Every prefix across the header and the first frames, then strided
  // through the bulk: a strict prefix must never decode as a complete
  // snapshot (the kEnd trailer is what rules out silent truncation).
  for (std::size_t cut = 0; cut < snapshot_.size();
       cut += (cut < 256 ? 1 : 13)) {
    std::span<const std::uint8_t> prefix(snapshot_.data(), cut);
    SpanSource source(prefix);
    Result<std::vector<Section>> sections =
        persist::ReadAllSections(&source);
    ASSERT_FALSE(sections.ok()) << "prefix " << cut << " decoded cleanly";
    ExpectCleanFailure(sections.status(),
                       "truncated at " + std::to_string(cut));
  }
}

TEST_F(SnapshotFuzzTest, SingleBitFlipsNeverCrashTheReader) {
  // CRC32C detects every single-bit flip in a covered frame+payload; flips
  // in the header are caught by magic/version checks; flips in reserved
  // fields may legitimately decode. Either way: no crash, clean Status.
  std::vector<std::uint8_t> mutant;
  for (std::size_t byte = 0; byte < snapshot_.size();
       byte += (byte < 64 ? 1 : 7)) {
    mutant = snapshot_;
    mutant[byte] = static_cast<std::uint8_t>(
        mutant[byte] ^ (1u << (byte % 8)));
    DrivePipeline(mutant, "bit flip at byte " + std::to_string(byte));
  }
}

TEST_F(SnapshotFuzzTest, CodecLevelBitFlipsFailCleanly) {
  // Straight to the codecs, bypassing the CRC — the layer a hostile writer
  // (valid CRC over malicious bytes) would reach. The Decoder's bounds and
  // plausibility guards are all that stands between these bytes and an
  // out-of-bounds walk.
  struct Target {
    const char* name;
    const std::vector<std::uint8_t>* payload;
    SectionType type;
  };
  const Target targets[] = {
      {"image", &image_payload_, SectionType::kFrozenSystemImage},
      {"sequence", &sequence_payload_, SectionType::kEventSequence},
      {"stream", &stream_payload_, SectionType::kStreamSession},
  };
  for (const Target& target : targets) {
    for (std::size_t byte = 0; byte < target.payload->size();
         byte += (byte < 64 ? 1 : 11)) {
      for (int bit : {0, 7}) {
        Section section;
        section.type = target.type;
        section.payload = *target.payload;
        section.payload_offset = 36;  // arbitrary but fixed file coordinate
        section.payload[byte] =
            static_cast<std::uint8_t>(section.payload[byte] ^ (1u << bit));
        const std::string context = std::string("codec flip ") + target.name +
                                    " byte " + std::to_string(byte);
        if (target.type == SectionType::kFrozenSystemImage) {
          Result<FrozenSystemImage> image =
              persist::DecodeFrozenSystemImage(section);
          // A flipped table value still *decodes*; FreezeFromImage is the
          // semantic gate. Structural corruption must fail cleanly.
          if (!image.ok()) ExpectCleanFailure(image.status(), context);
        } else if (target.type == SectionType::kEventSequence) {
          Result<EventSequence> sequence =
              persist::DecodeEventSequence(section);
          if (!sequence.ok()) ExpectCleanFailure(sequence.status(), context);
        } else {
          OnlineMiner miner = MakeMiner();
          Status installed =
              persist::StreamSessionCodec::Decode(section, &miner);
          if (!installed.ok()) ExpectCleanFailure(installed, context);
        }
      }
    }
  }
}

TEST_F(SnapshotFuzzTest, CodecLevelTruncationFailsCleanly) {
  for (std::size_t cut = 0; cut < stream_payload_.size();
       cut += (cut < 64 ? 1 : 17)) {
    Section section;
    section.type = SectionType::kStreamSession;
    section.payload.assign(stream_payload_.begin(),
                           stream_payload_.begin() +
                               static_cast<std::ptrdiff_t>(cut));
    section.payload_offset = 36;
    OnlineMiner miner = MakeMiner();
    Status installed = persist::StreamSessionCodec::Decode(section, &miner);
    ASSERT_FALSE(installed.ok())
        << "stream payload truncated at " << cut << " installed cleanly";
    ExpectCleanFailure(installed, "stream truncated at " + std::to_string(cut));
  }
  for (std::size_t cut = 0; cut < image_payload_.size();
       cut += (cut < 64 ? 1 : 17)) {
    Section section;
    section.type = SectionType::kFrozenSystemImage;
    section.payload.assign(image_payload_.begin(),
                           image_payload_.begin() +
                               static_cast<std::ptrdiff_t>(cut));
    section.payload_offset = 36;
    Result<FrozenSystemImage> image =
        persist::DecodeFrozenSystemImage(section);
    ASSERT_FALSE(image.ok())
        << "image payload truncated at " << cut << " decoded cleanly";
    ExpectCleanFailure(image.status(),
                       "image truncated at " + std::to_string(cut));
  }
}

TEST_F(SnapshotFuzzTest, SectionReorderStillDecodes) {
  // Rebuild the container with the sections in reverse order: framing makes
  // each section independent, so order is presentation, not semantics.
  SpanSource source(snapshot_);
  Result<std::vector<Section>> sections = persist::ReadAllSections(&source);
  ASSERT_TRUE(sections.ok());
  VectorSink sink;
  SnapshotWriter writer(&sink);
  ASSERT_TRUE(writer.WriteHeader().ok());
  for (auto it = sections->rbegin(); it != sections->rend(); ++it) {
    ASSERT_TRUE(writer.WriteSection(it->type, it->payload).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  DrivePipeline(sink.buffer(), "reversed");
}

TEST_F(SnapshotFuzzTest, ContainerVersionSkewIsUnsupported) {
  std::vector<std::uint8_t> future = snapshot_;
  future[8] = 0x02;  // little-endian format version
  SpanSource source(future);
  SnapshotReader reader(&source);
  Status header = reader.ReadHeader();
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.code(), StatusCode::kUnsupported) << header;
}

TEST_F(SnapshotFuzzTest, StreamPayloadVersionSkewIsUnsupported) {
  Section section;
  section.type = SectionType::kStreamSession;
  section.payload = stream_payload_;
  section.payload_offset = 36;
  section.payload[0] = 0x02;  // little-endian payload version
  OnlineMiner miner = MakeMiner();
  Status installed = persist::StreamSessionCodec::Decode(section, &miner);
  ASSERT_FALSE(installed.ok());
  EXPECT_EQ(installed.code(), StatusCode::kUnsupported) << installed;
}

}  // namespace
}  // namespace granmine
