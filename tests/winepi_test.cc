#include "granmine/baseline/winepi.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"

namespace granmine {
namespace {

EventSequence Seq(std::initializer_list<std::pair<EventTypeId, TimePoint>>
                      items) {
  EventSequence seq;
  for (const auto& [type, time] : items) seq.Add(type, time);
  return seq;
}

TEST(EpisodeTest, SerialOccurrenceInWindow) {
  EventSequence seq = Seq({{0, 10}, {1, 12}, {2, 15}});
  Episode abc{Episode::Kind::kSerial, {0, 1, 2}};
  EXPECT_TRUE(OccursInWindow(abc, seq, 10, 6));
  EXPECT_FALSE(OccursInWindow(abc, seq, 11, 6));  // misses event at 10
  EXPECT_FALSE(OccursInWindow(abc, seq, 10, 5));  // window ends at 14
  Episode cba{Episode::Kind::kSerial, {2, 1, 0}};
  EXPECT_FALSE(OccursInWindow(cba, seq, 10, 6));  // wrong order
}

TEST(EpisodeTest, ParallelOccurrenceIgnoresOrder) {
  EventSequence seq = Seq({{2, 10}, {1, 12}, {0, 15}});
  Episode abc{Episode::Kind::kParallel, {0, 1, 2}};
  EXPECT_TRUE(OccursInWindow(abc, seq, 10, 6));
  Episode with_multiplicity{Episode::Kind::kParallel, {1, 1}};
  EXPECT_FALSE(OccursInWindow(with_multiplicity, seq, 10, 6));
  seq.Add(1, 14);
  EXPECT_TRUE(OccursInWindow(with_multiplicity, seq, 10, 6));
}

TEST(EpisodeTest, WindowCountMatchesMtv95Domain) {
  // Events at 10 and 12; width 3: window starts range over [8, 12].
  EventSequence seq = Seq({{0, 10}, {1, 12}});
  Episode single{Episode::Kind::kSerial, {0}};
  WindowCount count = CountWindows(single, seq, 3);
  EXPECT_EQ(count.total, 5);
  // Windows [8,10],[9,11],[10,12] contain the type-0 event.
  EXPECT_EQ(count.contained, 3);
}

TEST(EpisodeTest, CountWindowsDifferentialAgainstDirectScan) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    EventSequence seq;
    TimePoint t = 0;
    int length = static_cast<int>(rng.Uniform(5, 25));
    for (int i = 0; i < length; ++i) {
      t += rng.Uniform(0, 4);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, 3)), t);
    }
    std::int64_t width = rng.Uniform(2, 10);
    Episode episode;
    episode.kind = rng.Bernoulli(0.5) ? Episode::Kind::kSerial
                                      : Episode::Kind::kParallel;
    int size = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < size; ++i) {
      episode.types.push_back(static_cast<EventTypeId>(rng.Uniform(0, 3)));
    }
    if (episode.kind == Episode::Kind::kParallel) {
      std::sort(episode.types.begin(), episode.types.end());
    }
    WindowCount fast = CountWindows(episode, seq, width);
    std::int64_t slow = 0;
    TimePoint first = seq.events().front().time;
    TimePoint last = seq.events().back().time;
    for (TimePoint w = first - width + 1; w <= last; ++w) {
      if (OccursInWindow(episode, seq, w, width)) ++slow;
    }
    EXPECT_EQ(fast.contained, slow)
        << episode.ToString() << " width=" << width << " trial=" << trial;
    EXPECT_EQ(fast.total, last - (first - width + 1) + 1);
  }
}

TEST(WinepiTest, FindsPlantedSerialEpisode) {
  // Plant A -> B -> C every 10 units; noise D events elsewhere.
  EventSequence seq;
  for (int i = 0; i < 50; ++i) {
    TimePoint base = i * 10;
    seq.Add(0, base);
    seq.Add(1, base + 2);
    seq.Add(2, base + 4);
    seq.Add(3, base + 7);
  }
  WinepiOptions options;
  options.kind = Episode::Kind::kSerial;
  // The planted span is 4 units; width 8 puts the ABC occurrence in 4 of
  // every 10 window positions => frequency 0.4.
  options.window_width = 8;
  options.min_frequency = 0.3;
  options.max_size = 3;
  WinepiReport report = MineFrequentEpisodes(seq, options);
  bool found_abc = false;
  for (const FrequentEpisode& f : report.frequent) {
    if (f.episode.types == std::vector<EventTypeId>{0, 1, 2}) {
      found_abc = true;
      EXPECT_GT(f.frequency, 0.3);
    }
    // Reversed order must not be frequent.
    EXPECT_NE(f.episode.types, (std::vector<EventTypeId>{2, 1, 0}));
  }
  EXPECT_TRUE(found_abc);
  EXPECT_GT(report.candidates_evaluated, 4u);
}

TEST(WinepiTest, ParallelMiningFindsCooccurrence) {
  EventSequence seq;
  for (int i = 0; i < 50; ++i) {
    TimePoint base = i * 10;
    seq.Add(1, base + 1);
    seq.Add(0, base + 2);  // always together, order varies
    if (i % 2 == 0) seq.Add(2, base + 5);
  }
  WinepiOptions options;
  options.kind = Episode::Kind::kParallel;
  options.window_width = 5;
  options.min_frequency = 0.25;
  options.max_size = 2;
  WinepiReport report = MineFrequentEpisodes(seq, options);
  bool found_pair = false;
  for (const FrequentEpisode& f : report.frequent) {
    if (f.episode.types == std::vector<EventTypeId>{0, 1}) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

TEST(WinepiTest, AprioriMonotonicity) {
  // Every frequent episode's subepisodes are frequent at the same threshold.
  Rng rng(123);
  EventSequence seq;
  TimePoint t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.Uniform(1, 3);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, 4)), t);
  }
  WinepiOptions options;
  options.kind = Episode::Kind::kSerial;
  options.window_width = 12;
  options.min_frequency = 0.2;
  options.max_size = 3;
  WinepiReport report = MineFrequentEpisodes(seq, options);
  for (const FrequentEpisode& f : report.frequent) {
    if (f.episode.types.size() < 2) continue;
    for (std::size_t drop = 0; drop < f.episode.types.size(); ++drop) {
      Episode sub = f.episode;
      sub.types.erase(sub.types.begin() + static_cast<std::ptrdiff_t>(drop));
      WindowCount count = CountWindows(sub, seq, options.window_width);
      EXPECT_GE(count.Frequency() + 1e-12, f.frequency)
          << sub.ToString() << " vs " << f.episode.ToString();
    }
  }
  EXPECT_FALSE(report.frequent.empty());
}

TEST(WinepiTest, EmptySequence) {
  WinepiOptions options;
  WinepiReport report = MineFrequentEpisodes(EventSequence(), options);
  EXPECT_TRUE(report.frequent.empty());
}

}  // namespace
}  // namespace granmine
