// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  * conversion soundness per (source, target) granularity pair and rule,
//  * Appendix-A.1 table laws per granularity,
//  * TAG-vs-oracle differential per PRNG seed,
//  * WINEPI window counting per window width.

#include <gtest/gtest.h>

#include "granmine/baseline/winepi.h"
#include "granmine/common/math.h"
#include "granmine/common/random.h"
#include "granmine/constraint/convert_constraint.h"
#include "granmine/granularity/system.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

GranularitySystem& DaysSystem() {
  static GranularitySystem* system =
      GranularitySystem::GregorianDays().release();
  return *system;
}

// ---------------------------------------------------------------------------
// Conversion soundness across every feasible ordered granularity pair.

struct ConversionCase {
  const char* source;
  const char* target;
  ConversionRule rule;
};

class ConversionSoundnessSweep
    : public testing::TestWithParam<ConversionCase> {};

TEST_P(ConversionSoundnessSweep, SatisfyingPairsStaySatisfying) {
  const ConversionCase& param = GetParam();
  const Granularity& source = *DaysSystem().Find(param.source);
  const Granularity& target = *DaysSystem().Find(param.target);
  if (!SupportCovers(target, source)) {
    GTEST_SKIP() << "conversion infeasible for this pair";
  }
  Rng rng(static_cast<std::uint64_t>(
      std::hash<std::string>()(std::string(param.source) + param.target)));
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::int64_t m = rng.Uniform(0, 6);
    std::int64_t n = m + rng.Uniform(0, 6);
    Bounds converted = ConvertBounds(DaysSystem().tables(), source, target,
                                     Bounds::Of(m, n), param.rule);
    Tcg source_tcg = Tcg::Of(m, n, &source);
    Tcg target_tcg = Tcg::Of(converted.lo, converted.hi, &target);
    for (int s = 0; s < 15; ++s) {
      TimePoint t1 = rng.Uniform(0, 1500);
      std::optional<Tick> z1 = source.TickContaining(t1);
      if (!z1.has_value()) continue;
      std::optional<TimeSpan> hull = source.TickHull(*z1 + rng.Uniform(m, n));
      ASSERT_TRUE(hull.has_value());
      TimePoint t2 = rng.Uniform(hull->first, hull->last);
      if (!Satisfies(source_tcg, t1, t2)) continue;
      ++checked;
      EXPECT_TRUE(Satisfies(target_tcg, t1, t2))
          << source_tcg.ToString() << " -> " << target_tcg.ToString()
          << " at (" << t1 << ", " << t2 << ")";
    }
  }
  EXPECT_GT(checked, 50);
}

std::vector<ConversionCase> AllConversionCases() {
  static const char* kNames[] = {"day",   "week",   "month",  "year",
                                 "b-day", "b-week", "b-month"};
  std::vector<ConversionCase> cases;
  for (const char* source : kNames) {
    for (const char* target : kNames) {
      if (std::string_view(source) == target) continue;
      cases.push_back({source, target, ConversionRule::kPaper});
      cases.push_back({source, target, ConversionRule::kTight});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ConversionSoundnessSweep,
    testing::ValuesIn(AllConversionCases()),
    [](const testing::TestParamInfo<ConversionCase>& info) {
      std::string name = std::string(info.param.source) + "_to_" +
                         info.param.target + "_" +
                         (info.param.rule == ConversionRule::kPaper ? "paper"
                                                                    : "tight");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Table laws per granularity.

class TableLawSweep : public testing::TestWithParam<const char*> {};

TEST_P(TableLawSweep, MonotoneSuperadditiveAndGapLaw) {
  const Granularity& g = *DaysSystem().Find(GetParam());
  GranularityTables& tables = DaysSystem().tables();
  for (std::int64_t k = 1; k <= 16; ++k) {
    auto min_k = tables.MinSize(g, k);
    auto max_k = tables.MaxSize(g, k);
    auto min_k1 = tables.MinSize(g, k + 1);
    auto max_k1 = tables.MaxSize(g, k + 1);
    auto gap_k = tables.MinGap(g, k);
    ASSERT_TRUE(min_k && max_k && min_k1 && max_k1 && gap_k);
    EXPECT_LE(*min_k, *max_k);
    EXPECT_LT(*min_k, *min_k1);                     // strictly increasing
    EXPECT_LT(*max_k, *max_k1);
    EXPECT_GE(*gap_k, k > 1 ? *tables.MinSize(g, k - 1) + 1 : 1);
    // Superadditivity of minsize for a split of k+1.
    for (std::int64_t a = 1; a <= k; ++a) {
      EXPECT_GE(*min_k1, *tables.MinSize(g, a) + *tables.MinSize(g, k + 1 - a))
          << g.name() << " split " << a << "+" << (k + 1 - a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gregorian, TableLawSweep,
                         testing::Values("day", "week", "month", "year",
                                         "b-day", "b-week", "b-month",
                                         "weekend-day"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// TAG-vs-oracle differential, one batch per seed.

class DifferentialSeedSweep : public testing::TestWithParam<int> {};

TEST_P(DifferentialSeedSweep, TagAgreesWithOracle) {
  GranularitySystem toy;
  const Granularity* types[] = {
      toy.AddUniform("unit", 1), toy.AddUniform("three", 3),
      toy.AddSynthetic("gapped", 4, {TimeSpan::Of(0, 2)})};
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int kTypeCount = 3;
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.Uniform(2, 4));
    EventStructure s;
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    for (int v = 1; v < n; ++v) {
      std::int64_t lo = rng.Uniform(0, 2);
      ASSERT_TRUE(s.AddConstraint(static_cast<int>(rng.Uniform(0, v - 1)), v,
                                  Tcg::Of(lo, lo + rng.Uniform(0, 2),
                                          types[rng.Index(3)]))
                      .ok());
    }
    auto built = BuildTagForStructure(s);
    ASSERT_TRUE(built.ok());
    TagMatcher matcher(&built->tag);
    std::vector<EventTypeId> phi;
    for (int v = 0; v < n; ++v) {
      phi.push_back(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)));
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypeCount);
    EventSequence seq;
    TimePoint t = 0;
    std::size_t length = static_cast<std::size_t>(rng.Uniform(4, 14));
    for (std::size_t i = 0; i < length; ++i) {
      t += rng.Uniform(0, 3);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)), t);
    }
    ASSERT_EQ(matcher.Accepts(seq.View(), symbols),
              OccursBruteForce(s, phi, seq.View()))
        << s.ToString() << " seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedSweep, testing::Range(0, 12));

// ---------------------------------------------------------------------------
// WINEPI window counting per window width.

class WinepiWidthSweep : public testing::TestWithParam<std::int64_t> {};

TEST_P(WinepiWidthSweep, FastCountMatchesDirectScan) {
  const std::int64_t width = GetParam();
  Rng rng(static_cast<std::uint64_t>(width) * 31 + 5);
  EventSequence seq;
  TimePoint t = 0;
  for (int i = 0; i < 30; ++i) {
    t += rng.Uniform(0, 5);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, 3)), t);
  }
  for (Episode::Kind kind :
       {Episode::Kind::kSerial, Episode::Kind::kParallel}) {
    for (int size = 1; size <= 3; ++size) {
      Episode episode;
      episode.kind = kind;
      for (int i = 0; i < size; ++i) {
        episode.types.push_back(
            static_cast<EventTypeId>(rng.Uniform(0, 3)));
      }
      if (kind == Episode::Kind::kParallel) {
        std::sort(episode.types.begin(), episode.types.end());
      }
      WindowCount fast = CountWindows(episode, seq, width);
      std::int64_t slow = 0;
      TimePoint first = seq.events().front().time;
      TimePoint last = seq.events().back().time;
      for (TimePoint w = first - width + 1; w <= last; ++w) {
        if (OccursInWindow(episode, seq, w, width)) ++slow;
      }
      EXPECT_EQ(fast.contained, slow)
          << episode.ToString() << " width=" << width;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WinepiWidthSweep,
                         testing::Values<std::int64_t>(1, 2, 3, 5, 8, 13, 21,
                                                       40));

}  // namespace
}  // namespace granmine
