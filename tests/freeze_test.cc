// Build→freeze→serve lifecycle of GranularitySystem: the dense id-indexed
// caches must answer byte-identically to the pre-freeze hashed path, Add*
// after Freeze() must fail with a clear Status, and a frozen system must be
// shareable across threads with no synchronization beyond the seal itself.

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "granmine/granularity/convert.h"
#include "granmine/granularity/system.h"
#include "granmine/granularity/tables.h"
#include "granmine/io/text_format.h"

namespace granmine {
namespace {

std::vector<CivilDate> TestHolidays() {
  // 1970-12-25 (Friday) and 1971-01-01 (Friday): real exception-window
  // overlays on the business types.
  return {{1970, 12, 25}, {1971, 1, 1}};
}

// The frozen system must return byte-identical table values to an identical
// unfrozen twin, across the full family — including the holiday-overlay
// business types — both under the sealed cap and past it (memo fallback).
TEST(FreezeEquivalenceTest, TablesMatchHashedPathAcrossFamily) {
  auto frozen = GranularitySystem::GregorianDays(TestHolidays());
  auto hashed = GranularitySystem::GregorianDays(TestHolidays());
  ASSERT_TRUE(frozen->Freeze().ok());
  ASSERT_TRUE(frozen->frozen());
  ASSERT_FALSE(hashed->frozen());

  const std::int64_t past_cap = GranularityTables::kSealedKCap + 10;
  for (const Granularity* g : frozen->family()) {
    const Granularity* twin = hashed->Find(g->name());
    ASSERT_NE(twin, nullptr) << g->name();
    for (std::int64_t k = 0; k <= past_cap; ++k) {
      EXPECT_EQ(frozen->tables().MinSize(*g, k),
                hashed->tables().MinSize(*twin, k))
          << g->name() << " minsize k=" << k;
      EXPECT_EQ(frozen->tables().MaxSize(*g, k),
                hashed->tables().MaxSize(*twin, k))
          << g->name() << " maxsize k=" << k;
      EXPECT_EQ(frozen->tables().MinGap(*g, k),
                hashed->tables().MinGap(*twin, k))
          << g->name() << " mingap k=" << k;
    }
  }
}

TEST(FreezeEquivalenceTest, LeastQueriesMatchHashedPath) {
  auto frozen = GranularitySystem::GregorianDays(TestHolidays());
  auto hashed = GranularitySystem::GregorianDays(TestHolidays());
  ASSERT_TRUE(frozen->Freeze().ok());
  for (const Granularity* g : frozen->family()) {
    const Granularity* twin = hashed->Find(g->name());
    ASSERT_NE(twin, nullptr);
    for (std::int64_t x : {1, 2, 5, 30, 365, 1000}) {
      EXPECT_EQ(frozen->tables().LeastTicksCovering(*g, x),
                hashed->tables().LeastTicksCovering(*twin, x))
          << g->name() << " x=" << x;
      EXPECT_EQ(frozen->tables().LeastTicksExceeding(*g, x),
                hashed->tables().LeastTicksExceeding(*twin, x))
          << g->name() << " x=" << x;
      EXPECT_EQ(frozen->tables().LeastTicksWithGapExceeding(*g, x),
                hashed->tables().LeastTicksWithGapExceeding(*twin, x))
          << g->name() << " x=" << x;
    }
  }
}

TEST(FreezeEquivalenceTest, CoverageMatchesHashedPathAcrossAllPairs) {
  auto frozen = GranularitySystem::GregorianDays(TestHolidays());
  auto hashed = GranularitySystem::GregorianDays(TestHolidays());
  ASSERT_TRUE(frozen->Freeze().ok());
  for (const Granularity* target : frozen->family()) {
    const Granularity* target_twin = hashed->Find(target->name());
    for (const Granularity* source : frozen->family()) {
      const Granularity* source_twin = hashed->Find(source->name());
      EXPECT_EQ(frozen->coverage().Covers(*target, *source),
                hashed->coverage().Covers(*target_twin, *source_twin))
          << target->name() << " covers " << source->name();
    }
  }
}

// Warm the hashed memo first, then freeze: the precomputed arrays must agree
// with what the memo already served (seal-after-use, not just seal-fresh).
TEST(FreezeEquivalenceTest, SealAfterWarmingMemoIsConsistent) {
  auto system = GranularitySystem::GregorianDays(TestHolidays());
  const Granularity* b_day = system->Find("b-day");
  ASSERT_NE(b_day, nullptr);
  std::vector<std::optional<std::int64_t>> before;
  for (std::int64_t k = 1; k <= 32; ++k) {
    before.push_back(system->tables().MinSize(*b_day, k));
  }
  ASSERT_TRUE(system->Freeze().ok());
  for (std::int64_t k = 1; k <= 32; ++k) {
    EXPECT_EQ(system->tables().MinSize(*b_day, k),
              before[static_cast<std::size_t>(k - 1)])
        << "k=" << k;
  }
}

// A granularity from a *different* system must not alias a sealed slot even
// when its dense id collides; it falls back to the hashed memo and still
// answers correctly.
TEST(FreezeEquivalenceTest, ForeignGranularityFallsBackToMemo) {
  auto frozen = GranularitySystem::GregorianDays();
  auto other = GranularitySystem::GregorianDays();
  ASSERT_TRUE(frozen->Freeze().ok());
  const Granularity* foreign = other->Find("week");
  const Granularity* local = frozen->Find("week");
  ASSERT_NE(foreign, nullptr);
  // Same id, different object: the guard must reject the sealed slot.
  ASSERT_EQ(foreign->id(), local->id());
  for (std::int64_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(frozen->tables().MinSize(*foreign, k),
              frozen->tables().MinSize(*local, k));
  }
  EXPECT_EQ(frozen->coverage().Covers(*local, *foreign),
            frozen->coverage().Covers(*local, *local));
}

TEST(FreezeTest, IdsAreDenseRegistrationOrder) {
  auto system = GranularitySystem::GregorianDays();
  const auto& family = system->family();
  ASSERT_FALSE(family.empty());
  for (std::size_t i = 0; i < family.size(); ++i) {
    EXPECT_EQ(family[i]->id(), static_cast<GranularityId>(i));
    EXPECT_EQ(system->Find(family[i]->name()), family[i]);
  }
  Granularity* unregistered = nullptr;
  (void)unregistered;
  UniformGranularity loose("loose", 10);
  EXPECT_EQ(loose.id(), kInvalidGranularityId);
}

TEST(FreezeTest, AddAfterFreezeFailsWithClearStatus) {
  auto system = GranularitySystem::GregorianDays();
  const Granularity* day = system->Find("day");
  ASSERT_TRUE(system->Freeze().ok());
  EXPECT_TRUE(system->last_add_error().ok());

  EXPECT_EQ(system->AddUniform("fortnight", 14), nullptr);
  EXPECT_FALSE(system->last_add_error().ok());
  EXPECT_EQ(system->last_add_error().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(system->last_add_error().message().find("frozen"),
            std::string::npos);
  EXPECT_NE(system->last_add_error().message().find("fortnight"),
            std::string::npos);

  EXPECT_EQ(system->AddGroup("decade", day, 3650), nullptr);
  EXPECT_EQ(system->AddMonths("month2", 1), nullptr);
  EXPECT_EQ(system->AddYears("year2", 1), nullptr);
  EXPECT_EQ(system->AddFilter("odd-day", day,
                              PeriodicPattern{2, {0}, 0}),
            nullptr);
  EXPECT_EQ(system->AddGroupBy("x", day, day), nullptr);
  EXPECT_EQ(system->AddSynthetic("shift", 10, {TimeSpan::Of(0, 3)}), nullptr);
  // The family is unchanged.
  EXPECT_EQ(system->Find("fortnight"), nullptr);
}

TEST(FreezeTest, TextFormatSurfacesFrozenAddError) {
  auto system = GranularitySystem::GregorianDays();
  ASSERT_TRUE(system->Freeze().ok());
  auto result =
      ParseGranularityDefinition("fortnight", "uniform(14)", system.get());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("frozen"), std::string::npos);
}

TEST(FreezeTest, FreezeIsIdempotentAndWorksOnEveryFactory) {
  auto gregorian = GranularitySystem::Gregorian(TestHolidays());
  EXPECT_TRUE(gregorian->Freeze().ok());
  EXPECT_TRUE(gregorian->Freeze().ok());  // idempotent
  EXPECT_TRUE(gregorian->frozen());

  auto days = GranularitySystem::GregorianDays();
  EXPECT_TRUE(days->Freeze().ok());
  EXPECT_TRUE(days->frozen());

  auto synthetic = std::make_unique<GranularitySystem>();
  synthetic->AddUniform("tick", 1);
  synthetic->AddSynthetic("phase", 10,
                          {TimeSpan::Of(0, 2), TimeSpan::Of(5, 6)});
  EXPECT_TRUE(synthetic->Freeze().ok());
  EXPECT_TRUE(synthetic->frozen());

  auto empty = std::make_unique<GranularitySystem>();
  EXPECT_TRUE(empty->Freeze().ok());  // freeze-before-build succeeds
  EXPECT_TRUE(empty->frozen());
  EXPECT_EQ(empty->AddUniform("late", 1), nullptr);
}

// Sealed lookups are wait-free reads of immutable arrays: hammer the frozen
// caches from several threads (run under TSAN via the sanitizer label) and
// check every thread sees the same answers.
TEST(FreezeTest, FrozenSystemIsShareableAcrossThreadsWithoutLocks) {
  auto system = GranularitySystem::GregorianDays(TestHolidays());
  ASSERT_TRUE(system->Freeze().ok());

  // Reference answers from the sealed arrays, single-threaded.
  const Granularity* b_day = system->Find("b-day");
  const Granularity* b_week = system->Find("b-week");
  const Granularity* month = system->Find("month");
  ASSERT_NE(b_day, nullptr);
  ASSERT_NE(b_week, nullptr);
  ASSERT_NE(month, nullptr);
  const auto expect_minsize = system->tables().MinSize(*b_week, 4);
  const auto expect_mingap = system->tables().MinGap(*b_day, 7);
  const bool expect_covers = system->coverage().Covers(*month, *b_day);

  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        if (system->tables().MinSize(*b_week, 4) != expect_minsize ||
            system->tables().MinGap(*b_day, 7) != expect_mingap ||
            system->coverage().Covers(*month, *b_day) != expect_covers) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace granmine
