// Unit tests for the miner internals: per-root windows (step 3), sequence
// reduction (step 2) and window screening (step 4, k=1).

#include "granmine/mining/windows.h"

#include <gtest/gtest.h>

#include "granmine/constraint/propagation.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/reduction.h"
#include "granmine/mining/screening.h"
#include "granmine/paper/figures.h"

namespace granmine {
namespace {

class WindowsTest : public testing::Test {
 protected:
  WindowsTest() : system_(GranularitySystem::Gregorian()) {}
  PropagationResult Propagate(const EventStructure& s) {
    ConstraintPropagator propagator(&system_->tables(), &system_->coverage());
    auto result = propagator.Propagate(s);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->consistent);
    return *std::move(result);
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(WindowsTest, SimpleDayWindow) {
  // X1 is 1..2 days after X0.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Of(1, 2, system_->Find("day"))).ok());
  PropagationResult propagation = Propagate(s);
  TimePoint t0 = 10 * kSecondsPerDay + 5 * 3600;  // day 11 at 05:00
  RootWindows windows = ComputeRootWindows(s, x0, propagation, t0);
  ASSERT_TRUE(windows.root_viable);
  EXPECT_EQ(windows.windows[x0], TimeSpan::Point(t0));
  // Days 12..13 entirely: [start of day 12, end of day 13].
  EXPECT_EQ(windows.windows[x1],
            TimeSpan::Of(11 * kSecondsPerDay, 13 * kSecondsPerDay - 1));
  EXPECT_EQ(windows.deadline, 13 * kSecondsPerDay - 1);
}

TEST_F(WindowsTest, IntersectsAcrossGranularities) {
  // Same week AND 2..3 days after: the window is the intersection.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Same(system_->Find("week"))).ok());
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Of(2, 3, system_->Find("day"))).ok());
  PropagationResult propagation = Propagate(s);
  // Monday 1970-01-05 = day 4, 08:00.
  TimePoint t0 = 4 * kSecondsPerDay + 8 * 3600;
  RootWindows windows = ComputeRootWindows(s, x0, propagation, t0);
  ASSERT_TRUE(windows.root_viable);
  // Day window: days 6..7 (Wed..Thu); week window: through Sunday day 10.
  EXPECT_EQ(windows.windows[x1],
            TimeSpan::Of(6 * kSecondsPerDay, 8 * kSecondsPerDay - 1));
}

TEST_F(WindowsTest, RootViabilityRequiresDefinedTicks) {
  // A b-day constraint makes a Saturday root unviable.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Of(0, 5, system_->Find("b-day"))).ok());
  PropagationResult propagation = Propagate(s);
  TimePoint saturday = 2 * kSecondsPerDay + 12 * 3600;
  EXPECT_FALSE(ComputeRootWindows(s, x0, propagation, saturday).root_viable);
  TimePoint monday = 4 * kSecondsPerDay + 12 * 3600;
  EXPECT_TRUE(ComputeRootWindows(s, x0, propagation, monday).root_viable);
}

TEST_F(WindowsTest, UsableForVariableChecksSupport) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Of(0, 5, system_->Find("b-day"))).ok());
  PropagationResult propagation = Propagate(s);
  TimeSpan window = TimeSpan::Of(0, 10 * kSecondsPerDay);
  TimePoint friday = kSecondsPerDay + 10 * 3600;
  TimePoint saturday = 2 * kSecondsPerDay + 10 * 3600;
  EXPECT_TRUE(UsableForVariable(propagation, x1, window, friday));
  EXPECT_FALSE(UsableForVariable(propagation, x1, window, saturday));
  EXPECT_FALSE(UsableForVariable(propagation, x1, TimeSpan::Of(0, 10),
                                 friday));  // outside window
}

TEST_F(WindowsTest, ReductionKeepsOnlyBindableEvents) {
  auto fig1a = BuildFigure1a(*system_);
  ASSERT_TRUE(fig1a.ok());
  PropagationResult propagation = Propagate(*fig1a);
  // allowed: X0 -> {0}, X1 -> {1}, X2 -> {2}, X3 -> {3}.
  std::vector<std::vector<EventTypeId>> allowed = {{0}, {1}, {2}, {3}};
  EventSequence seq;
  seq.Add(0, 4 * kSecondsPerDay);       // Monday: bindable to X0
  seq.Add(1, 2 * kSecondsPerDay);       // Saturday: X1 needs b-day ticks
  seq.Add(7, 4 * kSecondsPerDay);       // type no variable may take
  seq.Add(3, 5 * kSecondsPerDay);       // bindable to X3
  EventSequence reduced = ReduceSequence(seq, propagation, allowed);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced.events()[0].type, 0);
  EXPECT_EQ(reduced.events()[1].type, 3);
}

TEST_F(WindowsTest, ScreeningPrunesRareTypes) {
  // Roots at days 4, 11, 18 (Mondays); X1 one day after. Type 1 follows
  // every root, type 2 follows one root only.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(
      s.AddConstraint(x0, x1, Tcg::Of(1, 1, system_->Find("day"))).ok());
  PropagationResult propagation = Propagate(s);
  EventSequence seq;
  std::vector<RootWindows> windows;
  for (std::int64_t day : {4, 11, 18}) {
    TimePoint t0 = day * kSecondsPerDay + 9 * 3600;
    seq.Add(0, t0);
    seq.Add(1, t0 + 24 * 3600);
    windows.push_back(ComputeRootWindows(s, x0, propagation, t0));
  }
  seq.Add(2, 5 * kSecondsPerDay + 10 * 3600);  // follows the first root only
  std::vector<std::vector<EventTypeId>> allowed = {{0}, {1, 2}};
  ScreenByWindows(propagation, seq, windows, x0, /*total_roots=*/3,
                  /*min_confidence=*/0.5, &allowed);
  EXPECT_EQ(allowed[1], (std::vector<EventTypeId>{1}));
  // At a lower threshold type 2 (frequency 1/3) survives.
  allowed = {{0}, {1, 2}};
  ScreenByWindows(propagation, seq, windows, x0, 3, 0.2, &allowed);
  EXPECT_EQ(allowed[1], (std::vector<EventTypeId>{1, 2}));
}

TEST_F(WindowsTest, FirstEventAtOrAfterBinarySearch) {
  EventSequence seq;
  seq.Add(0, 10);
  seq.Add(0, 20);
  seq.Add(0, 20);
  seq.Add(0, 30);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 5), 0u);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 10), 0u);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 11), 1u);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 20), 1u);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 21), 3u);
  EXPECT_EQ(FirstEventAtOrAfter(seq, 31), 4u);
}

}  // namespace
}  // namespace granmine
