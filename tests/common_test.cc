#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "granmine/common/math.h"
#include "granmine/common/random.h"
#include "granmine/common/result.h"
#include "granmine/common/status.h"
#include "granmine/common/time_span.h"

namespace granmine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad bound");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad bound");
  EXPECT_EQ(st.ToString(), "invalid-argument: bad bound");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_EQ(copy, st);
  Status assigned;
  assigned = st;
  EXPECT_EQ(assigned, st);
}

TEST(StatusTest, CodesRoundTripNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsupported), "unsupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "internal: boom");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::Invalid("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> DoubleIt(int v) {
  GM_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIt(21), 42);
  EXPECT_FALSE(DoubleIt(0).ok());
}

TEST(MathTest, SaturatingAddClampsAtInfinity) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3);
  EXPECT_EQ(SaturatingAdd(kInfinity, 5), kInfinity);
  EXPECT_EQ(SaturatingAdd(kInfinity, kInfinity), kInfinity);
  EXPECT_EQ(SaturatingAdd(-kInfinity, -7), -kInfinity);
  EXPECT_EQ(SaturatingAdd(kInfinity - 1, kInfinity - 1), kInfinity);
}

TEST(MathTest, FloorDivAndMod) {
  EXPECT_EQ(FloorDiv(7, 3), 2);
  EXPECT_EQ(FloorDiv(-7, 3), -3);
  EXPECT_EQ(FloorDiv(-6, 3), -2);
  EXPECT_EQ(FloorMod(7, 3), 1);
  EXPECT_EQ(FloorMod(-7, 3), 2);
  EXPECT_EQ(FloorMod(-6, 3), 0);
}

TEST(TimeSpanTest, BasicPredicates) {
  TimeSpan span = TimeSpan::Of(10, 20);
  EXPECT_FALSE(span.empty());
  EXPECT_EQ(span.length(), 11);
  EXPECT_TRUE(span.Contains(10));
  EXPECT_TRUE(span.Contains(20));
  EXPECT_FALSE(span.Contains(21));
  EXPECT_TRUE(span.Contains(TimeSpan::Of(12, 15)));
  EXPECT_FALSE(span.Contains(TimeSpan::Of(12, 25)));
  EXPECT_TRUE(span.Contains(TimeSpan::Empty()));
  EXPECT_TRUE(TimeSpan::Empty().empty());
  EXPECT_EQ(TimeSpan::Empty().length(), 0);
}

TEST(TimeSpanTest, Intersection) {
  TimeSpan a = TimeSpan::Of(0, 10);
  TimeSpan b = TimeSpan::Of(5, 15);
  EXPECT_EQ(a.Intersect(b), TimeSpan::Of(5, 10));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(TimeSpan::Of(11, 12)));
  EXPECT_TRUE(a.Intersect(TimeSpan::Of(20, 30)).empty());
}

TEST(BoundsTest, IntersectAndContain) {
  Bounds a = Bounds::Of(0, 5);
  Bounds b = Bounds::Of(3, 9);
  EXPECT_EQ(a.Intersect(b), Bounds::Of(3, 5));
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(6));
  EXPECT_TRUE(Bounds::Of(4, 2).empty());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ArrivalGapIsAtLeastOne) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.ArrivalGap(3.0), 1);
  }
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace granmine
