#include "granmine/io/dot.h"

#include <gtest/gtest.h>

#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"
#include "granmine/tag/builder.h"

namespace granmine {
namespace {

TEST(DotTest, EventStructureRendering) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  std::string dot = EventStructureToDot(*fig1a);
  EXPECT_NE(dot.find("digraph event_structure"), std::string::npos);
  EXPECT_NE(dot.find("label=\"X0\""), std::string::npos);
  EXPECT_NE(dot.find("[1,1]b-day"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("v2 -> v3"), std::string::npos);
  // Balanced braces, ends with newline.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(DotTest, TagRenderingWithSymbolNames) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  auto built = BuildTagForStructure(*fig1a);
  ASSERT_TRUE(built.ok());
  const char* kNames[] = {"rise", "report", "hp", "fall"};
  std::string dot = TagToDot(built->tag, [&](Symbol s) {
    return std::string(kNames[s]);
  });
  EXPECT_NE(dot.find("digraph tag"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // accepting S3S3
  EXPECT_NE(dot.find("ANY"), std::string::npos);           // skip loops
  EXPECT_NE(dot.find("rise"), std::string::npos);
  EXPECT_NE(dot.find("reset"), std::string::npos);
  EXPECT_NE(dot.find("shape=point"), std::string::npos);   // start marker
}

TEST(DotTest, EscapesQuotes) {
  auto system = GranularitySystem::Gregorian();
  EventStructure s;
  VariableId a = s.AddVariable("we \"quote\"");
  VariableId b = s.AddVariable("plain");
  ASSERT_TRUE(s.AddConstraint(a, b, Tcg::Same(system->Find("day"))).ok());
  std::string dot = EventStructureToDot(s);
  EXPECT_NE(dot.find("we \\\"quote\\\""), std::string::npos);
}

}  // namespace
}  // namespace granmine
