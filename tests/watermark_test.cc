// Unit tests for WatermarkTracker: watermark monotonicity under out-of-order
// (but in-tolerance) arrivals, late-arrival rejection at the boundary, the
// trailing retention horizon, and Seal terminal semantics.

#include "granmine/common/watermark.h"

#include <gtest/gtest.h>

#include "granmine/common/math.h"

namespace granmine {
namespace {

TEST(WatermarkTest, BeforeFirstEventNothingIsLateNothingCommits) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/100);
  EXPECT_EQ(tracker.watermark(), -kInfinity);
  EXPECT_EQ(tracker.horizon(), -kInfinity);
  EXPECT_FALSE(tracker.IsLate(-1000000));
  EXPECT_FALSE(tracker.sealed());
}

TEST(WatermarkTest, WatermarkTrailsMaxSeenByTolerance) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/kInfinity);
  tracker.Observe(100);
  EXPECT_EQ(tracker.watermark(), 95);
  tracker.Observe(107);
  EXPECT_EQ(tracker.watermark(), 102);
}

// The monotonicity contract: an in-tolerance regression in event time must
// never move the watermark backwards — only the max timestamp drives it.
TEST(WatermarkTest, OutOfOrderArrivalsNeverRegressTheWatermark) {
  WatermarkTracker tracker(/*tolerance=*/10, /*retention=*/kInfinity);
  TimePoint last_mark = -kInfinity;
  for (TimePoint t : {TimePoint{50}, TimePoint{44}, TimePoint{60},
                      TimePoint{51}, TimePoint{58}, TimePoint{60}}) {
    ASSERT_FALSE(tracker.IsLate(t)) << "t=" << t;
    tracker.Observe(t);
    EXPECT_GE(tracker.watermark(), last_mark) << "t=" << t;
    last_mark = tracker.watermark();
  }
  EXPECT_EQ(tracker.watermark(), 50);
}

// Boundary semantics: t == watermark is still on time (groups strictly below
// the mark commit), t == watermark - 1 is late.
TEST(WatermarkTest, LateBoundaryIsStrict) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/kInfinity);
  tracker.Observe(100);
  ASSERT_EQ(tracker.watermark(), 95);
  EXPECT_FALSE(tracker.IsLate(95));
  EXPECT_FALSE(tracker.IsLate(96));
  EXPECT_TRUE(tracker.IsLate(94));
}

TEST(WatermarkTest, ZeroToleranceRejectsAnyRegression) {
  WatermarkTracker tracker(/*tolerance=*/0, /*retention=*/kInfinity);
  tracker.Observe(10);
  EXPECT_FALSE(tracker.IsLate(10));  // equal timestamps still arrive
  EXPECT_TRUE(tracker.IsLate(9));
}

TEST(WatermarkTest, HorizonTrailsWatermarkByRetention) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/20);
  tracker.Observe(100);
  EXPECT_EQ(tracker.watermark(), 95);
  EXPECT_EQ(tracker.horizon(), 75);
}

TEST(WatermarkTest, UnboundedRetentionNeverEvicts) {
  WatermarkTracker tracker(/*tolerance=*/0, /*retention=*/kInfinity);
  tracker.Observe(1000000);
  EXPECT_EQ(tracker.horizon(), -kInfinity);
}

// Seal is terminal: the watermark jumps to +infinity (all buffered groups
// commit, all future arrivals are late), but the horizon must stay anchored
// at the last real mark so the terminal flush cannot evict what it reports.
TEST(WatermarkTest, SealCommitsEverythingButFreezesTheHorizon) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/20);
  tracker.Observe(100);
  tracker.Seal();
  EXPECT_TRUE(tracker.sealed());
  EXPECT_EQ(tracker.watermark(), kInfinity);
  EXPECT_TRUE(tracker.IsLate(100));
  EXPECT_TRUE(tracker.IsLate(1000000));
  EXPECT_EQ(tracker.horizon(), 75);  // NOT +infinity - retention
}

TEST(WatermarkTest, SealBeforeAnyEventStillSeals) {
  WatermarkTracker tracker(/*tolerance=*/5, /*retention=*/20);
  tracker.Seal();
  EXPECT_EQ(tracker.watermark(), kInfinity);
  EXPECT_TRUE(tracker.IsLate(0));
}

}  // namespace
}  // namespace granmine
