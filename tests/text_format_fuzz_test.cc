// Malformed-input hardening for the text parsers: every prefix truncation,
// single-byte corruption, and seeded random mutation of realistic inputs
// must either parse or return InvalidArgument — never crash, hang, or
// invoke UB (run under GRANMINE_SANITIZE=address,undefined to certify).

#include "granmine/io/text_format.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "granmine/common/random.h"

namespace granmine {
namespace {

const char* const kStructureSeeds[] = {
    "# the Figure-1(a) structure\n"
    "rise -> report : [1,1] b-day\n"
    "report -> fall : [0,1] week\n"
    "rise -> hp     : [0,5] b-day\n"
    "hp -> fall     : [0,8] hour\n",

    "granularity shift       = group(hour, 8)\n"
    "granularity fiscal-year = group(month, 12, 3)\n"
    "granularity oddball     = synthetic(7, 0-1 3-3 5-6)\n"
    "granularity sparse      = filter(day, 10, 0 2 4)\n"
    "granularity fine        = uniform(30, 5)\n"
    "granularity cross       = groupby(week, month)\n"
    "open -> close : [0,0] shift\n"
    "close -> audit : [1,2] fiscal-year, [0,9] oddball\n",

    "a -> b : [0,inf] day\n"
    "b -> c : [-3,3] hour, [0,1] week\n"
    "c -> a : [2,2] month\n",
};

const char* const kSequenceSeeds[] = {
    "1970-01-05 10:00:00  IBM-rise\n"
    "1970-01-06           IBM-earnings-report   # midnight\n"
    "3600                 tick                  # raw seconds also fine\n"
    "-86400               before-epoch\n"
    "2024-02-29 23:59:59  leap-day\n",

    "0 alpha\n"
    "1 beta\n"
    "1 alpha\n"
    "9223372036854775807 max\n",
};

// A cheap stand-in for the Gregorian system defining every granularity name
// the seeds mention. Building the real calendar costs tens of milliseconds —
// far too much for tens of thousands of mutants — and the parsers only need
// name resolution, not calendar semantics.
std::unique_ptr<GranularitySystem> MakeToySystem() {
  auto system = std::make_unique<GranularitySystem>();
  const Granularity* hour = system->AddUniform("hour", 1);
  const Granularity* day = system->AddGroup("day", hour, 24);
  system->AddGroup("week", day, 7);
  system->AddGroup("month", day, 30);
  system->AddFilter("b-day", day, PeriodicPattern{7, {0, 1, 2, 3, 4}});
  return system;
}

// Runs one corrupted input through every parser entry point and asserts the
// malformed-input contract for each.
void ExpectParsersSurvive(const std::string& text) {
  {
    auto system = MakeToySystem();
    std::vector<std::string> names;
    Result<EventStructure> structure =
        ParseEventStructure(text, system.get(), &names);
    if (!structure.ok()) {
      EXPECT_EQ(structure.status().code(), StatusCode::kInvalidArgument)
          << structure.status() << "\ninput:\n"
          << text;
    }
  }
  {
    // The const overload must also reject granularity declarations cleanly.
    auto system = MakeToySystem();
    const GranularitySystem& const_system = *system;
    Result<EventStructure> structure = ParseEventStructure(text, const_system);
    if (!structure.ok()) {
      EXPECT_EQ(structure.status().code(), StatusCode::kInvalidArgument);
    }
  }
  for (std::int64_t units_per_day : {std::int64_t{86400}, std::int64_t{1}}) {
    EventTypeRegistry registry;
    Result<EventSequence> sequence =
        ParseEventSequence(text, &registry, units_per_day);
    if (!sequence.ok()) {
      EXPECT_EQ(sequence.status().code(), StatusCode::kInvalidArgument)
          << sequence.status() << "\ninput:\n"
          << text;
    }
  }
}

std::vector<std::string> AllSeeds() {
  std::vector<std::string> seeds;
  for (const char* seed : kStructureSeeds) seeds.emplace_back(seed);
  for (const char* seed : kSequenceSeeds) seeds.emplace_back(seed);
  return seeds;
}

TEST(TextFormatFuzzTest, EveryPrefixTruncationIsHandled) {
  for (const std::string& seed : AllSeeds()) {
    for (std::size_t length = 0; length <= seed.size(); ++length) {
      ExpectParsersSurvive(seed.substr(0, length));
    }
  }
}

TEST(TextFormatFuzzTest, EverySingleByteCorruptionIsHandled) {
  // A spread of corruptions: syntax characters the grammars key on, NUL,
  // high-bit bytes, and a bit flip of the original.
  const char kReplacements[] = {'[', ']', ',', ':', '-', '>', '(',  ')',
                                '#', '=', ' ', '\n', '\0', '\x80', '9'};
  for (const std::string& seed : AllSeeds()) {
    for (std::size_t position = 0; position < seed.size(); ++position) {
      for (char replacement : kReplacements) {
        std::string mutated = seed;
        mutated[position] = replacement;
        ExpectParsersSurvive(mutated);
      }
      std::string flipped = seed;
      flipped[position] = static_cast<char>(flipped[position] ^ 0x10);
      ExpectParsersSurvive(flipped);
    }
  }
}

TEST(TextFormatFuzzTest, SeededRandomMutationsAreHandled) {
  const std::vector<std::string> seeds = AllSeeds();
  Rng rng(20260805);
  const char kAlphabet[] = "[],:->()#=ab19 \n\t\0inf-uniform,group";
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string text = seeds[rng.Index(seeds.size())];
    const int edits = static_cast<int>(rng.Uniform(1, 8));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      switch (rng.Uniform(0, 2)) {
        case 0:  // replace a byte
          text[rng.Index(text.size())] =
              kAlphabet[rng.Index(sizeof(kAlphabet) - 1)];
          break;
        case 1:  // delete a byte
          text.erase(rng.Index(text.size()), 1);
          break;
        default:  // insert a byte
          text.insert(rng.Index(text.size() + 1), 1,
                      kAlphabet[rng.Index(sizeof(kAlphabet) - 1)]);
          break;
      }
    }
    ExpectParsersSurvive(text);
  }
}

TEST(TextFormatFuzzTest, HostileTimePointsAreRejectedNotCrashed) {
  const char* const kStamps[] = {
      "",
      "-",
      "--",
      "1970-01-05",
      "1970-1-5",
      "1970-01-05 10:00:00",
      "1970-13-01",
      "1970-00-01",
      "1970-02-30",
      "1900-02-29",  // not a leap year
      "2000-02-29",  // a leap year
      "1970-01-05 24:00:00",
      "1970-01-05 10:60:00",
      "1970-01-05 10:00:60",
      "1970-01-05 -1:00:00",
      "2147483647-01-01",
      "-2147483648-12-31",
      "99999999999999999999-01-01",
      "1970-01-05 10:00",
      "nonsense",
      "1970--01--05",
      "١٩٧٠-٠١-٠٥",  // non-ASCII digits
  };
  for (const char* stamp : kStamps) {
    for (std::int64_t units_per_day : {std::int64_t{86400}, std::int64_t{1}}) {
      Result<TimePoint> parsed = ParseTimePoint(stamp, units_per_day);
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
            << stamp;
      }
    }
  }
  // Round-trip sanity on the seeds that must parse.
  auto epoch_week = ParseTimePoint("1970-01-05");
  ASSERT_TRUE(epoch_week.ok());
  EXPECT_EQ(*epoch_week, 4 * 86400);
}

TEST(TextFormatFuzzTest, HostileGranularityDefinitionsAreRejected) {
  const char* const kExpressions[] = {
      "uniform()",
      "uniform(0)",
      "uniform(-5)",
      "uniform(1, 2, 3)",
      "uniform(9223372036854775808)",  // int64 overflow
      "group(day)",
      "group(nope, 2)",
      "group(day, 0)",
      "group(day, 2, -1)",
      "groupby(day)",
      "groupby(day, nope)",
      "filter(day, 7)",
      "filter(day, 7, )",
      "filter(day, 7, 9)",
      "filter(day, 7, -1)",
      "synthetic(7)",
      "synthetic(7, 5)",
      "synthetic(7, 5-3)",
      "synthetic(7, 0-9)",
      "synthetic(7, -1-2)",
      "wat(1)",
      "uniform",
      "uniform(",
      "(1)",
      "",
  };
  int index = 0;
  for (const char* expression : kExpressions) {
    auto system = MakeToySystem();
    std::string name = "fuzz-" + std::to_string(index++);
    Result<const Granularity*> defined =
        ParseGranularityDefinition(name, expression, system.get());
    if (!defined.ok()) {
      EXPECT_EQ(defined.status().code(), StatusCode::kInvalidArgument)
          << expression;
    }
  }
}

}  // namespace
}  // namespace granmine
