#include "granmine/granularity/convert.h"

#include <gtest/gtest.h>

#include "granmine/granularity/system.h"

namespace granmine {
namespace {

class ConvertGranTest : public testing::Test {
 protected:
  ConvertGranTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity& Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return *g;
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(ConvertGranTest, CoveringTickMonthOfDay) {
  // ⌈z⌉^month_day is always defined: day 31 (Feb 1) is in month 2.
  EXPECT_EQ(CoveringTick(Get("month"), Get("day"), 32), 2);
  EXPECT_EQ(CoveringTick(Get("month"), Get("day"), 1), 1);
  EXPECT_EQ(CoveringTick(Get("month"), Get("day"), 31), 1);  // Jan 31
}

TEST_F(ConvertGranTest, CoveringTickMonthOfWeekOftenUndefined) {
  // The paper: ⌈z⌉^month_week is undefined when week z straddles two months.
  const Granularity& month = Get("month");
  const Granularity& week = Get("week");
  // Week 5 = days 25..31 (Mon Jan 26 .. Sun Feb 1): straddles Jan/Feb.
  EXPECT_EQ(week.TickHull(5), TimeSpan::Of(25, 31));
  EXPECT_EQ(CoveringTick(month, week, 5), std::nullopt);
  // Week 2 = days 4..10 lies inside January.
  EXPECT_EQ(CoveringTick(month, week, 2), 1);
}

TEST_F(ConvertGranTest, CoveringTickBdayOfDayUndefinedOnWeekends) {
  // ⌈z⌉^b-day_day is undefined when day z is a Saturday/Sunday.
  const Granularity& b_day = Get("b-day");
  const Granularity& day = Get("day");
  EXPECT_EQ(CoveringTick(b_day, day, 1), 1);              // Thu
  EXPECT_EQ(CoveringTick(b_day, day, 3), std::nullopt);   // Sat
  EXPECT_EQ(CoveringTick(b_day, day, 5), 3);              // Mon
}

TEST_F(ConvertGranTest, CoveringTickWithGappedCoarseType) {
  // b-month covers a b-day; a month-of-b-days covers each of its b-days.
  EXPECT_EQ(CoveringTick(Get("b-month"), Get("b-day"), 1), 1);
  EXPECT_EQ(CoveringTick(Get("b-month"), Get("b-day"), 22), 1);
  EXPECT_EQ(CoveringTick(Get("b-month"), Get("b-day"), 23), 2);
  // But b-month does NOT cover a full week (weekends are outside b-month).
  EXPECT_EQ(CoveringTick(Get("b-month"), Get("week"), 2), std::nullopt);
  // b-month covers a b-week that lies within one month.
  EXPECT_EQ(CoveringTick(Get("b-month"), Get("b-week"), 2), 1);
}

TEST_F(ConvertGranTest, SupportContainsSpanWalksGaps) {
  const Granularity& b_day = Get("b-day");
  EXPECT_TRUE(SupportContainsSpan(b_day, TimeSpan::Of(0, 1)));  // Thu-Fri
  EXPECT_FALSE(SupportContainsSpan(b_day, TimeSpan::Of(0, 2)));  // hits Sat
  EXPECT_TRUE(SupportContainsSpan(b_day, TimeSpan::Of(4, 8)));  // Mon-Fri
  EXPECT_TRUE(SupportContainsSpan(Get("day"), TimeSpan::Of(0, 1000)));
}

TEST_F(ConvertGranTest, FullSupportCoverage) {
  // day covers b-day's support, not vice versa.
  EXPECT_TRUE(SupportCovers(Get("day"), Get("b-day")));
  EXPECT_FALSE(SupportCovers(Get("b-day"), Get("day")));
  // month covers everything full-support and b-day too.
  EXPECT_TRUE(SupportCovers(Get("month"), Get("day")));
  EXPECT_TRUE(SupportCovers(Get("month"), Get("b-day")));
  EXPECT_TRUE(SupportCovers(Get("month"), Get("week")));
  EXPECT_TRUE(SupportCovers(Get("year"), Get("month")));
  EXPECT_TRUE(SupportCovers(Get("day"), Get("week")));
}

TEST_F(ConvertGranTest, GappedPairCoverage) {
  // The paper's examples: b-week converts into week, month, or b-day, but
  // not into weekend-day.
  EXPECT_TRUE(SupportCovers(Get("week"), Get("b-week")));
  EXPECT_TRUE(SupportCovers(Get("month"), Get("b-week")));
  EXPECT_TRUE(SupportCovers(Get("b-day"), Get("b-week")));
  EXPECT_FALSE(SupportCovers(Get("weekend-day"), Get("b-week")));
  // Same-support family: b-day <-> b-month both ways.
  EXPECT_TRUE(SupportCovers(Get("b-month"), Get("b-day")));
  EXPECT_TRUE(SupportCovers(Get("b-day"), Get("b-month")));
  // Disjoint patterns fail.
  EXPECT_FALSE(SupportCovers(Get("b-day"), Get("weekend-day")));
  EXPECT_FALSE(SupportCovers(Get("weekend-day"), Get("b-day")));
}

TEST_F(ConvertGranTest, HolidayShrinksSourceCoverage) {
  auto holiday_system =
      GranularitySystem::GregorianDays({CivilDate{1970, 1, 2}});
  const Granularity& b_day_h = *holiday_system->Find("b-day");
  const Granularity& b_day = Get("b-day");
  // The plain b-day support includes Fri 1970-01-02, which the holiday
  // version lacks — so the holiday type cannot serve as a target for the
  // plain one, while the reverse direction works.
  EXPECT_FALSE(SupportCovers(b_day_h, b_day));
  EXPECT_TRUE(SupportCovers(b_day, b_day_h));
}

TEST_F(ConvertGranTest, CoverageCacheMemoizes) {
  SupportCoverageCache cache;
  EXPECT_TRUE(cache.Covers(Get("day"), Get("b-day")));
  EXPECT_TRUE(cache.Covers(Get("day"), Get("b-day")));
  EXPECT_FALSE(cache.Covers(Get("b-day"), Get("day")));
}

}  // namespace
}  // namespace granmine
