#include "granmine/tag/oracle.h"

#include <gtest/gtest.h>

#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/sequence.h"

namespace granmine {
namespace {

TEST(OracleWitnessTest, ReturnsAValidAssignment) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  // Day 4 = Monday 1970-01-05.
  auto at = [](std::int64_t day, int hour) {
    return day * kSecondsPerDay + hour * 3600;
  };
  EventSequence seq;
  seq.Add(4, at(4, 9));   // noise type 4
  seq.Add(0, at(4, 10));  // rise
  seq.Add(1, at(5, 11));  // report
  seq.Add(2, at(6, 12));  // hp
  seq.Add(3, at(6, 15));  // fall
  std::vector<EventTypeId> phi = {0, 1, 2, 3};
  auto witness = FindOccurrenceBruteForce(*fig1a, phi, seq.View());
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->size(), 4u);
  // Each variable maps to an event of its type; all TCGs hold.
  std::vector<TimePoint> times(4);
  std::vector<bool> used(seq.size(), false);
  for (int v = 0; v < 4; ++v) {
    std::size_t e = (*witness)[static_cast<std::size_t>(v)];
    EXPECT_EQ(seq.events()[e].type, phi[static_cast<std::size_t>(v)]);
    EXPECT_FALSE(used[e]);  // injective
    used[e] = true;
    times[static_cast<std::size_t>(v)] = seq.events()[e].time;
  }
  for (const EventStructure::Edge& edge : fig1a->edges()) {
    for (const Tcg& tcg : edge.tcgs) {
      EXPECT_TRUE(Satisfies(tcg, times[edge.from], times[edge.to]))
          << tcg.ToString();
    }
  }
}

TEST(OracleWitnessTest, NulloptWhenNoOccurrence) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  EventSequence seq;
  seq.Add(0, 4 * kSecondsPerDay);  // a lone rise
  std::vector<EventTypeId> phi = {0, 1, 2, 3};
  EXPECT_EQ(FindOccurrenceBruteForce(*fig1a, phi, seq.View()), std::nullopt);
}

TEST(FiscalCalendarTest, PhasedGroupsFormFiscalYears) {
  // Fiscal year = 12 months starting April: phase 3 over months.
  auto system = GranularitySystem::GregorianDays();
  const Granularity* fiscal =
      system->AddGroup("fiscal-year", system->Find("month"), 12, /*phase=*/3);
  // FY1 = Apr 1970 .. Mar 1971.
  std::int64_t apr1 = DaysFromCivil(1970, 4, 1);
  std::int64_t mar31 = DaysFromCivil(1971, 3, 31);
  EXPECT_EQ(fiscal->TickHull(1), TimeSpan::Of(apr1, mar31));
  // January-March 1970 precede fiscal tick 1.
  EXPECT_EQ(fiscal->TickContaining(0), std::nullopt);
  EXPECT_EQ(fiscal->TickContaining(apr1), 1);
  EXPECT_EQ(fiscal->TickContaining(mar31), 1);
  EXPECT_EQ(fiscal->TickContaining(mar31 + 1), 2);
  // Same fiscal year: Dec 1970 and Feb 1971.
  Tcg same_fy = Tcg::Same(fiscal);
  EXPECT_TRUE(Satisfies(same_fy, DaysFromCivil(1970, 12, 15),
                        DaysFromCivil(1971, 2, 15)));
  // Different fiscal years: Feb 1971 and Apr 1971.
  EXPECT_FALSE(Satisfies(same_fy, DaysFromCivil(1971, 2, 15),
                         DaysFromCivil(1971, 4, 2)));
  // Same calendar year but different fiscal years: Feb and May 1971.
  EXPECT_TRUE(Satisfies(Tcg::Same(system->Find("year")),
                        DaysFromCivil(1971, 2, 15),
                        DaysFromCivil(1971, 5, 15)));
  EXPECT_FALSE(Satisfies(same_fy, DaysFromCivil(1971, 2, 15),
                         DaysFromCivil(1971, 5, 15)));
  // Tables work through the phased type.
  EXPECT_EQ(system->tables().MinSize(*fiscal, 1), 365);
  EXPECT_EQ(system->tables().MaxSize(*fiscal, 1), 366);
}

}  // namespace
}  // namespace granmine
