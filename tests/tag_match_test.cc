#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

// --- Figure 2: the TAG generated for Example 1 -----------------------------

TEST(TagBuilderTest, Figure2Structure) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  auto built = BuildTagForStructure(*fig1a);
  ASSERT_TRUE(built.ok()) << built.status();
  // Two chains (the paper's p = 2), each with two granularities => 4 clocks.
  EXPECT_EQ(built->chains.size(), 2u);
  EXPECT_EQ(built->tag.clocks().size(), 4u);
  // Product states S0S0, S1S1, S1S2, S2S1, S2S2, S3S3 (Figure 2).
  EXPECT_EQ(built->tag.state_count(), 6);
  // One ANY self-loop per state plus the 6 labeled transitions of Figure 2
  // (rise, report x2, hp-rise x2, fall).
  EXPECT_EQ(built->tag.transitions().size(), 6u + 6u);
  EXPECT_EQ(built->tag.start_states().size(), 1u);
  EXPECT_EQ(built->tag.accepting_states().size(), 1u);
  // Clocks stay chain-local.
  ASSERT_EQ(built->clock_chain.size(), 4u);
  for (const Tag::Transition& t : built->tag.transitions()) {
    if (t.symbol == kAnySymbol) {
      EXPECT_TRUE(t.resets.empty());
      EXPECT_TRUE(t.guard.IsTriviallyTrue());
    }
  }
}

TEST(TagBuilderTest, SingleVariableStructure) {
  auto system = GranularitySystem::Gregorian();
  EventStructure s;
  s.AddVariable("X0");
  auto built = BuildTagForStructure(s);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->tag.state_count(), 2);
  EXPECT_EQ(built->tag.clocks().size(), 0u);

  TagMatcher matcher(&built->tag);
  EventSequence seq;
  seq.Add(7, 100);
  EXPECT_TRUE(matcher.Accepts(seq.View(), SymbolMap::FromAssignment({7}, 8)));
  EXPECT_FALSE(matcher.Accepts(seq.View(), SymbolMap::FromAssignment({3}, 8)));
}

TEST(TagBuilderTest, ComplexTypeSubstitution) {
  auto system = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  // φ: X0..X3 -> event types 10, 11, 12, 13.
  auto built = BuildTagForComplexType(*fig1a, {10, 11, 12, 13});
  ASSERT_TRUE(built.ok()) << built.status();
  for (const Tag::Transition& t : built->tag.transitions()) {
    if (t.symbol != kAnySymbol) {
      EXPECT_GE(t.symbol, 10);
      EXPECT_LE(t.symbol, 13);
    }
  }
}

// --- Matching the Example-1 pattern ----------------------------------------

class Example1MatchTest : public testing::Test {
 protected:
  Example1MatchTest() : system_(GranularitySystem::Gregorian()) {
    auto fig1a = BuildFigure1a(*system_);
    EXPECT_TRUE(fig1a.ok());
    structure_ = *std::move(fig1a);
    auto built = BuildTagForStructure(structure_);
    EXPECT_TRUE(built.ok());
    built_ = *std::move(built);
  }

  // Event types: 0=IBM-rise, 1=IBM-report, 2=HP-rise, 3=IBM-fall, 4=noise.
  SymbolMap PatternSymbols() const {
    return SymbolMap::FromAssignment({0, 1, 2, 3}, 5);
  }

  // A valid instance: rise Mon 10:00, report Tue 11:00, HP-rise Wed 12:00,
  // fall Wed 15:00. Day 4 = Monday 1970-01-05.
  EventSequence ValidInstance() const {
    EventSequence seq;
    seq.Add(0, Hour(4, 10));
    seq.Add(1, Hour(5, 11));
    seq.Add(2, Hour(6, 12));
    seq.Add(3, Hour(6, 15));
    return seq;
  }

  static TimePoint Hour(std::int64_t day, int hour) {
    return day * kSecondsPerDay + hour * 3600;
  }

  std::unique_ptr<GranularitySystem> system_;
  EventStructure structure_;
  TagBuildResult built_;
};

TEST_F(Example1MatchTest, AcceptsValidInstance) {
  TagMatcher matcher(&built_.tag);
  EXPECT_TRUE(matcher.Accepts(ValidInstance().View(), PatternSymbols()));
}

TEST_F(Example1MatchTest, SkipsUnrelatedEventsIncludingWeekends) {
  // Noise events — including one on a Saturday, outside b-day support —
  // must be skippable without killing the run (occurrence semantics).
  EventSequence seq = ValidInstance();
  seq.Add(4, Hour(4, 12));   // noise Monday
  seq.Add(4, Hour(3, 10));   // noise Sunday 1970-01-04 (no b-day tick)
  seq.Add(4, Hour(6, 13));   // noise between HP-rise and fall
  TagMatcher matcher(&built_.tag);
  EXPECT_TRUE(matcher.Accepts(seq.View(), PatternSymbols()));
}

TEST_F(Example1MatchTest, RejectsGuardViolations) {
  TagMatcher matcher(&built_.tag);
  // Report two business days after the rise ([1,1]b-day violated).
  EventSequence late_report;
  late_report.Add(0, Hour(4, 10));
  late_report.Add(1, Hour(6, 11));
  late_report.Add(2, Hour(6, 12));
  late_report.Add(3, Hour(6, 15));
  EXPECT_FALSE(matcher.Accepts(late_report.View(), PatternSymbols()));
  // HP-rise more than 8 hours before the fall ([0,8]hour violated).
  EventSequence early_hp;
  early_hp.Add(0, Hour(4, 10));
  early_hp.Add(1, Hour(5, 11));
  early_hp.Add(2, Hour(6, 2));
  early_hp.Add(3, Hour(6, 15));
  EXPECT_FALSE(matcher.Accepts(early_hp.View(), PatternSymbols()));
  // Fall two weeks later ([0,1]week violated). Day 18 = Mon Jan 19.
  EventSequence late_fall;
  late_fall.Add(0, Hour(4, 10));
  late_fall.Add(1, Hour(5, 11));
  late_fall.Add(3, Hour(18, 15));
  late_fall.Add(2, Hour(18, 12));
  EXPECT_FALSE(matcher.Accepts(late_fall.View(), PatternSymbols()));
}

TEST_F(Example1MatchTest, SharedVariableConsumesOneEvent) {
  // Both chains end in X3 (IBM-fall); a sequence where the fall satisfies
  // the hour constraint but not the week constraint must be rejected even
  // if another fall satisfies the other half.
  EventSequence seq;
  seq.Add(0, Hour(4, 10));
  seq.Add(1, Hour(5, 11));
  // Fall #1: right after the report (week OK) but >8h after the HP rise.
  // HP rise is late enough for fall #2 only.
  seq.Add(3, Hour(6, 9));
  seq.Add(2, Hour(18, 10));
  seq.Add(3, Hour(18, 15));  // Fall #2: hour OK for HP, but 2 weeks later
  TagMatcher matcher(&built_.tag);
  EXPECT_FALSE(matcher.Accepts(seq.View(), PatternSymbols()));
}

TEST_F(Example1MatchTest, AnchoredMatching) {
  EventSequence seq;
  seq.Add(4, Hour(4, 9));  // noise first
  EventSequence valid = ValidInstance();
  for (const Event& e : valid.events()) seq.Add(e);
  TagMatcher matcher(&built_.tag);
  MatchOptions anchored;
  anchored.anchored = true;
  // Anchored at the noise event: the run may not skip it.
  EXPECT_FALSE(
      matcher.Accepts(seq.View(), PatternSymbols(), anchored));
  // Anchored at the true rise (index 1 after sorting).
  EXPECT_TRUE(matcher.Accepts(seq.SuffixFrom(1), PatternSymbols(), anchored));
  // Unanchored: found despite the leading noise.
  EXPECT_TRUE(matcher.Accepts(seq.View(), PatternSymbols()));
}

TEST_F(Example1MatchTest, MatchStatsPopulated) {
  TagMatcher matcher(&built_.tag);
  MatchStats stats;
  EXPECT_TRUE(
      matcher.Accepts(ValidInstance().View(), PatternSymbols(), {}, &stats));
  EXPECT_GT(stats.configurations, 0u);
  EXPECT_GT(stats.events_scanned, 0u);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST_F(Example1MatchTest, ConfigurationBudget) {
  TagMatcher matcher(&built_.tag);
  MatchOptions options;
  options.max_configurations = 1;
  MatchStats stats;
  EventSequence seq = ValidInstance();
  EXPECT_FALSE(
      matcher.Accepts(seq.View(), PatternSymbols(), options, &stats));
  EXPECT_TRUE(stats.budget_exhausted);
}

// --- Differential testing against the §3 occurrence oracle (Theorem 3) -----

class TagOracleDifferentialTest : public testing::Test {
 protected:
  TagOracleDifferentialTest() {
    unit_ = toy_.AddUniform("unit", 1);
    three_ = toy_.AddUniform("three", 3);
    five_ = toy_.AddUniform("five", 5);
    gapped_ = toy_.AddSynthetic("gapped", 4, {TimeSpan::Of(0, 2)});
  }

  // A random rooted DAG with random toy TCGs.
  EventStructure RandomStructure(Rng& rng, int n) {
    const Granularity* types[] = {unit_, three_, five_, gapped_};
    EventStructure s;
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    for (int v = 1; v < n; ++v) {
      int parent = static_cast<int>(rng.Uniform(0, v - 1));
      std::int64_t lo = rng.Uniform(0, 2);
      EXPECT_TRUE(s.AddConstraint(parent, v,
                                  Tcg::Of(lo, lo + rng.Uniform(0, 2),
                                          types[rng.Index(4)]))
                      .ok());
    }
    // Occasionally an extra forward edge.
    if (n >= 3 && rng.Bernoulli(0.5)) {
      int a = static_cast<int>(rng.Uniform(0, n - 2));
      int b = static_cast<int>(rng.Uniform(a + 1, n - 1));
      if (s.FindEdge(a, b) == nullptr) {
        std::int64_t lo = rng.Uniform(0, 2);
        EXPECT_TRUE(s.AddConstraint(a, b,
                                    Tcg::Of(lo, lo + rng.Uniform(0, 2),
                                            types[rng.Index(4)]))
                        .ok());
      }
    }
    return s;
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  const Granularity* three_;
  const Granularity* five_;
  const Granularity* gapped_;
};

TEST_F(TagOracleDifferentialTest, AgreesWithBruteForceOracle) {
  Rng rng(20240601);
  const int kTypeCount = 3;
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int n = static_cast<int>(rng.Uniform(2, 4));
    EventStructure s = RandomStructure(rng, n);
    auto built = BuildTagForStructure(s);
    ASSERT_TRUE(built.ok()) << built.status() << "\n" << s.ToString();
    TagMatcher matcher(&built->tag);

    std::vector<EventTypeId> phi;
    for (int v = 0; v < n; ++v) {
      phi.push_back(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)));
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypeCount);

    EventSequence seq;
    std::size_t length = static_cast<std::size_t>(rng.Uniform(3, 12));
    TimePoint t = 0;
    for (std::size_t i = 0; i < length; ++i) {
      t += rng.Uniform(0, 4);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)), t);
    }

    bool tag_says = matcher.Accepts(seq.View(), symbols);
    bool oracle_says = OccursBruteForce(s, phi, seq.View());
    ASSERT_EQ(tag_says, oracle_says)
        << s.ToString() << "\nphi size " << phi.size() << " trial " << trial;
    tag_says ? ++accepted : ++rejected;
  }
  // The family must exercise both outcomes.
  EXPECT_GT(accepted, 10);
  EXPECT_GT(rejected, 10);
}

TEST_F(TagOracleDifferentialTest, AnchoredAgreesWithOracle) {
  Rng rng(987);
  const int kTypeCount = 3;
  int checked = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int n = static_cast<int>(rng.Uniform(2, 3));
    EventStructure s = RandomStructure(rng, n);
    auto built = BuildTagForStructure(s);
    ASSERT_TRUE(built.ok());
    TagMatcher matcher(&built->tag);
    std::vector<EventTypeId> phi;
    for (int v = 0; v < n; ++v) {
      phi.push_back(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)));
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypeCount);
    EventSequence seq;
    TimePoint t = 0;
    for (int i = 0; i < 10; ++i) {
      t += rng.Uniform(0, 3);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)), t);
    }
    VariableId root = *s.FindRoot();
    for (std::size_t at : seq.OccurrencesOf(phi[root])) {
      MatchOptions anchored;
      anchored.anchored = true;
      bool tag_says =
          matcher.Accepts(seq.SuffixFrom(at), symbols, anchored);
      OracleOptions oracle_options;
      oracle_options.anchored_root_index = 0;  // relative to the suffix
      bool oracle_says =
          OccursBruteForce(s, phi, seq.SuffixFrom(at), oracle_options);
      ASSERT_EQ(tag_says, oracle_says) << s.ToString() << " at=" << at;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

// --- Oracle unit behaviour ---------------------------------------------------

TEST(OracleTest, InjectivityIsEnforced) {
  auto system = GranularitySystem::GregorianDays();
  const Granularity* day = system->Find("day");
  // Two variables of the same type both within day distance 0 of the root:
  // needs two distinct events.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(day)).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x2, Tcg::Same(day)).ok());
  // In the day-grained calendar one instant = one day, so "same day" means
  // equal timestamps — which distinct events may share.
  std::vector<EventTypeId> phi = {0, 1, 1};
  EventSequence one;
  one.Add(0, 10);
  one.Add(1, 10);
  EXPECT_FALSE(OccursBruteForce(s, phi, one.View()));  // θ must be injective
  one.Add(1, 10);
  EXPECT_TRUE(OccursBruteForce(s, phi, one.View()));
}

}  // namespace
}  // namespace granmine
