// Property/fuzz tests over randomly generated periodic granularities and
// their compositions: the §2 axioms, table exactness against brute force,
// and the ⌈z⌉/support operators against their set-theoretic definitions.

#include <gtest/gtest.h>

#include "granmine/common/math.h"
#include "granmine/common/random.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/system.h"
#include "granmine/granularity/tables.h"

namespace granmine {
namespace {

// A random synthetic granularity: period in [4, 20], 1-3 disjoint tick
// intervals, random origin in [0, 3].
const Granularity* RandomSynthetic(GranularitySystem& system, Rng& rng,
                                   int index) {
  std::int64_t period = rng.Uniform(4, 20);
  int pieces = static_cast<int>(rng.Uniform(1, 3));
  std::vector<TimeSpan> ticks;
  TimePoint at = rng.Uniform(0, 1);
  for (int i = 0; i < pieces && at < period; ++i) {
    TimePoint end = std::min<TimePoint>(period - 1, at + rng.Uniform(0, 4));
    ticks.push_back(TimeSpan::Of(at, end));
    at = end + 2 + rng.Uniform(0, 2);
  }
  return system.AddSynthetic("fuzz" + std::to_string(index), period, ticks,
                             rng.Uniform(0, 3));
}

class GranularityFuzzTest : public testing::Test {
 protected:
  GranularityFuzzTest() : rng_(20260705) {
    for (int i = 0; i < 12; ++i) {
      types_.push_back(RandomSynthetic(system_, rng_, i));
    }
    // A few structured compositions on top.
    types_.push_back(system_.AddGroup("fuzz-group", types_[0], 3));
    types_.push_back(system_.AddUniform("fuzz-unit", 1));
    types_.push_back(system_.AddUniform("fuzz-five", 5, /*offset=*/-2));
  }
  GranularitySystem system_;
  Rng rng_;
  std::vector<const Granularity*> types_;
};

TEST_F(GranularityFuzzTest, Section2Axioms) {
  // Monotonicity (axiom 1) and non-emptiness of every tick, over a prefix.
  for (const Granularity* g : types_) {
    std::optional<TimeSpan> prev = g->TickHull(1);
    ASSERT_TRUE(prev.has_value()) << g->name();
    for (Tick z = 2; z <= 120; ++z) {
      std::optional<TimeSpan> hull = g->TickHull(z);
      ASSERT_TRUE(hull.has_value()) << g->name();
      EXPECT_GT(hull->first, prev->last) << g->name() << " tick " << z;
      EXPECT_LE(hull->first, hull->last) << g->name();
      prev = hull;
    }
  }
}

TEST_F(GranularityFuzzTest, TickContainingAgreesWithExtent) {
  for (const Granularity* g : types_) {
    // Enumerate instants across several periods; cross-check membership.
    std::vector<TimeSpan> extent;
    for (TimePoint t = -5; t < 100; ++t) {
      std::optional<Tick> z = g->TickContaining(t);
      if (z.has_value()) {
        ASSERT_GE(*z, 1) << g->name();
        extent.clear();
        g->TickExtent(*z, &extent);
        bool inside = false;
        for (const TimeSpan& piece : extent) inside |= piece.Contains(t);
        EXPECT_TRUE(inside) << g->name() << " t=" << t << " z=" << *z;
      }
    }
  }
}

TEST_F(GranularityFuzzTest, PeriodicityContract) {
  for (const Granularity* g : types_) {
    const Granularity::Periodicity p = g->periodicity();
    Tick base = g->LastDeviantTick() + 1;
    for (Tick z = base; z < base + 2 * p.ticks_per_period + 3; ++z) {
      std::optional<TimeSpan> a = g->TickHull(z);
      std::optional<TimeSpan> b = g->TickHull(z + p.ticks_per_period);
      ASSERT_TRUE(a.has_value() && b.has_value());
      EXPECT_EQ(b->first - a->first, p.period) << g->name() << " z=" << z;
      EXPECT_EQ(b->last - a->last, p.period) << g->name();
    }
  }
}

TEST_F(GranularityFuzzTest, TablesMatchBruteForce) {
  GranularityTables& tables = system_.tables();
  for (const Granularity* g : types_) {
    for (std::int64_t k : {1, 2, 3, 5, 9}) {
      std::int64_t min_size = kInfinity, max_size = 0, min_gap = kInfinity;
      // Brute force over plenty of start positions (covers > 3 periods).
      for (Tick i = 1; i <= 120; ++i) {
        TimeSpan lo = *g->TickHull(i);
        TimeSpan hi = *g->TickHull(i + k - 1);
        min_size = std::min(min_size, hi.last - lo.first + 1);
        max_size = std::max(max_size, hi.last - lo.first + 1);
        min_gap = std::min(min_gap, g->TickHull(i + k)->first - lo.last);
      }
      EXPECT_EQ(tables.MinSize(*g, k), min_size) << g->name() << " k=" << k;
      EXPECT_EQ(tables.MaxSize(*g, k), max_size) << g->name() << " k=" << k;
      EXPECT_EQ(tables.MinGap(*g, k), min_gap) << g->name() << " k=" << k;
    }
  }
}

TEST_F(GranularityFuzzTest, InverseTableQueriesAreConsistent) {
  GranularityTables& tables = system_.tables();
  Rng rng(9);
  for (const Granularity* g : types_) {
    for (int trial = 0; trial < 10; ++trial) {
      std::int64_t x = rng.Uniform(1, 60);
      auto s = tables.LeastTicksCovering(*g, x);
      ASSERT_TRUE(s.has_value()) << g->name();
      EXPECT_GE(*tables.MinSize(*g, *s), x) << g->name();
      if (*s > 1) {
        EXPECT_LT(*tables.MinSize(*g, *s - 1), x) << g->name();
      }
      auto r = tables.LeastTicksExceeding(*g, x);
      ASSERT_TRUE(r.has_value());
      EXPECT_GT(*tables.MaxSize(*g, *r), x) << g->name();
      if (*r > 0) {
        EXPECT_LE(*tables.MaxSize(*g, *r - 1), x) << g->name();
      }
      auto q = tables.LeastTicksWithGapExceeding(*g, x);
      ASSERT_TRUE(q.has_value());
      EXPECT_GT(*tables.MinGap(*g, *q), x) << g->name();
      if (*q > 1) {
        EXPECT_LE(*tables.MinGap(*g, *q - 1), x) << g->name();
      }
    }
  }
}

TEST_F(GranularityFuzzTest, MinGapDominatesMinSizeMinusOne) {
  // The inequality mingap(d) >= minsize(d-1) + 1 that justifies the paper's
  // conversion rule (see DESIGN.md).
  GranularityTables& tables = system_.tables();
  for (const Granularity* g : types_) {
    for (std::int64_t d : {2, 3, 4, 7, 11}) {
      auto gap = tables.MinGap(*g, d);
      auto size = tables.MinSize(*g, d - 1);
      ASSERT_TRUE(gap.has_value() && size.has_value());
      EXPECT_GE(*gap, *size + 1) << g->name() << " d=" << d;
    }
  }
}

TEST_F(GranularityFuzzTest, CoveringTickMatchesDefinition) {
  // ⌈z⌉^μ_ν = z' iff extent_ν(z) ⊆ extent_μ(z'), checked by instant
  // enumeration across the joint prefix.
  for (const Granularity* mu : types_) {
    for (const Granularity* nu : types_) {
      if (mu == nu) continue;
      for (Tick z = 1; z <= 12; ++z) {
        std::optional<Tick> covering = CoveringTick(*mu, *nu, z);
        // Reference computation.
        std::vector<TimeSpan> nu_extent;
        nu->TickExtent(z, &nu_extent);
        ASSERT_FALSE(nu_extent.empty());
        std::optional<Tick> expected;
        bool uniform = true;
        for (const TimeSpan& piece : nu_extent) {
          for (TimePoint t = piece.first; t <= piece.last; ++t) {
            std::optional<Tick> zt = mu->TickContaining(t);
            if (!zt.has_value()) {
              uniform = false;
              break;
            }
            if (!expected.has_value()) expected = zt;
            if (*expected != *zt) uniform = false;
            if (!uniform) break;
          }
          if (!uniform) break;
        }
        std::optional<Tick> reference =
            uniform && expected.has_value() ? expected : std::nullopt;
        EXPECT_EQ(covering, reference)
            << mu->name() << " of " << nu->name() << " tick " << z;
      }
    }
  }
}

TEST_F(GranularityFuzzTest, SupportCoversMatchesEnumeration) {
  for (const Granularity* target : types_) {
    for (const Granularity* source : types_) {
      if (target == source) continue;
      bool fast = SupportCovers(*target, *source);
      // Reference: every covered instant of the source in a long prefix is
      // covered by the target. (SupportCovers may be conservatively false,
      // but for these small periodic types its scan is exhaustive, so we
      // demand exact agreement on a bounded horizon.)
      bool reference = true;
      for (TimePoint t = 0; t <= 400 && reference; ++t) {
        if (source->InSupport(t) && !target->InSupport(t)) reference = false;
      }
      EXPECT_EQ(fast, reference)
          << "target=" << target->name() << " source=" << source->name();
    }
  }
}

}  // namespace
}  // namespace granmine
