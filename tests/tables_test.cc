#include "granmine/granularity/tables.h"

#include <gtest/gtest.h>

#include "granmine/common/math.h"
#include "granmine/common/random.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

class TablesTest : public testing::Test {
 protected:
  TablesTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity& Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return *g;
  }
  GranularityTables& tables() { return system_->tables(); }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(TablesTest, PaperValuesForMonths) {
  // The paper's running examples (Appendix A.1), with day as primitive:
  // minsize(month, 1) = 28, maxsize(month, 1) = 31.
  EXPECT_EQ(tables().MinSize(Get("month"), 1), 28);
  EXPECT_EQ(tables().MaxSize(Get("month"), 1), 31);
}

TEST_F(TablesTest, PaperValueForBusinessDays) {
  // maxsize(b-day, 2) = 4 (Friday through Monday), as stated in the paper.
  EXPECT_EQ(tables().MaxSize(Get("b-day"), 2), 4);
  EXPECT_EQ(tables().MinSize(Get("b-day"), 2), 2);
  EXPECT_EQ(tables().MinSize(Get("b-day"), 1), 1);
  // mingap(b-day, 1) = 1 (consecutive weekdays).
  EXPECT_EQ(tables().MinGap(Get("b-day"), 1), 1);
  // Six consecutive b-days span at most Fri..next Fri = 8 days.
  EXPECT_EQ(tables().MaxSize(Get("b-day"), 6), 8);
}

TEST_F(TablesTest, UniformTypesAreClosedForm) {
  const Granularity& day = Get("day");
  EXPECT_EQ(tables().MinSize(day, 5), 5);
  EXPECT_EQ(tables().MaxSize(day, 5), 5);
  EXPECT_EQ(tables().MinGap(day, 3), 3);
  const Granularity& week = Get("week");
  EXPECT_EQ(tables().MinSize(week, 2), 14);
  // Adjacent weeks touch: min(week(i+1)) - max(week(i)) = 1.
  EXPECT_EQ(tables().MinGap(week, 1), 1);
  EXPECT_EQ(tables().MinGap(week, 2), 8);
}

TEST_F(TablesTest, ZeroTickConventions) {
  EXPECT_EQ(tables().MinSize(Get("month"), 0), 0);
  EXPECT_EQ(tables().MaxSize(Get("month"), 0), 0);
  // mingap(g, 0) = 1 - maxsize(g, 1): within one tick the "gap" is negative.
  EXPECT_EQ(tables().MinGap(Get("month"), 0), 1 - 31);
  EXPECT_EQ(tables().MinGap(Get("day"), 0), 0);
}

TEST_F(TablesTest, MonthSpansMatchBruteForce) {
  const Granularity& month = Get("month");
  for (std::int64_t k : {1, 2, 3, 12, 13, 24}) {
    // Brute force over 100 years of start months.
    std::int64_t lo = kInfinity, hi = 0;
    for (Tick i = 1; i <= 1200; ++i) {
      std::int64_t span =
          month.TickHull(i + k - 1)->last - month.TickHull(i)->first + 1;
      lo = std::min(lo, span);
      hi = std::max(hi, span);
    }
    EXPECT_EQ(tables().MinSize(month, k), lo) << "k=" << k;
    EXPECT_EQ(tables().MaxSize(month, k), hi) << "k=" << k;
  }
}

TEST_F(TablesTest, YearSpans) {
  const Granularity& year = Get("year");
  EXPECT_EQ(tables().MinSize(year, 1), 365);
  EXPECT_EQ(tables().MaxSize(year, 1), 366);
  // Any 4 consecutive years contain exactly one leap year... except runs
  // crossing a skipped century leap (1900, 2100): min = 1460, max = 1461.
  EXPECT_EQ(tables().MaxSize(year, 4), 3 * 365 + 366);
  EXPECT_EQ(tables().MinSize(year, 4), 4 * 365);  // e.g. 2097..2100
}

TEST_F(TablesTest, SuperadditivityProperties) {
  // minsize and mingap are superadditive (a span of a+b ticks contains
  // disjoint spans of a and b ticks); maxsize of a+b ticks additionally
  // absorbs the gap between the two blocks, so only the weaker bound
  // maxsize(a+b) <= maxsize(a) + maxsize(b) + maxgap holds — we assert the
  // directions the sound conversion relies on, plus minsize <= maxsize.
  Rng rng(7);
  for (const char* name : {"month", "b-day", "b-week", "b-month", "year"}) {
    const Granularity& g = Get(name);
    for (int trial = 0; trial < 20; ++trial) {
      std::int64_t a = rng.Uniform(1, 30);
      std::int64_t b = rng.Uniform(1, 30);
      auto min_ab = tables().MinSize(g, a + b);
      auto min_a = tables().MinSize(g, a);
      auto min_b = tables().MinSize(g, b);
      ASSERT_TRUE(min_ab && min_a && min_b);
      EXPECT_GE(*min_ab, *min_a + *min_b) << name;
      auto max_ab = tables().MaxSize(g, a + b);
      auto max_a = tables().MaxSize(g, a);
      ASSERT_TRUE(max_ab && max_a);
      EXPECT_GE(*max_ab, *max_a) << name;  // monotone
      EXPECT_LE(*tables().MinSize(g, a), *tables().MaxSize(g, a)) << name;
      auto gap_ab = tables().MinGap(g, a + b);
      auto gap_a = tables().MinGap(g, a);
      auto gap_b = tables().MinGap(g, b);
      ASSERT_TRUE(gap_ab && gap_a && gap_b);
      EXPECT_GE(*gap_ab, *gap_a + *gap_b) << name;
    }
  }
}

TEST_F(TablesTest, SizesAreStrictlyIncreasing) {
  for (const char* name : {"month", "b-day", "b-month"}) {
    const Granularity& g = Get(name);
    for (std::int64_t k = 1; k < 20; ++k) {
      EXPECT_LT(*tables().MinSize(g, k), *tables().MinSize(g, k + 1)) << name;
      EXPECT_LT(*tables().MaxSize(g, k), *tables().MaxSize(g, k + 1)) << name;
    }
  }
}

TEST_F(TablesTest, LeastTicksCovering) {
  const Granularity& month = Get("month");
  // 28 days are covered by 1 month minimum-span; 29 need 2.
  EXPECT_EQ(tables().LeastTicksCovering(month, 28), 1);
  EXPECT_EQ(tables().LeastTicksCovering(month, 29), 2);
  EXPECT_EQ(tables().LeastTicksCovering(month, 1), 1);
  const Granularity& day = Get("day");
  EXPECT_EQ(tables().LeastTicksCovering(day, 365), 365);
}

TEST_F(TablesTest, LeastTicksExceeding) {
  const Granularity& month = Get("month");
  // maxsize(month, 1) = 31 > 30, so 1 tick suffices to exceed 30 days.
  EXPECT_EQ(tables().LeastTicksExceeding(month, 30), 1);
  EXPECT_EQ(tables().LeastTicksExceeding(month, 31), 2);
  EXPECT_EQ(tables().LeastTicksExceeding(month, -5), 0);
  EXPECT_EQ(tables().LeastTicksExceeding(month, 0), 1);
}

TEST_F(TablesTest, HolidaysStretchMaxSize) {
  // Removing Mon 1970-01-05 (day tick 5) makes Fri..Tue a 5-day pair span.
  auto system = GranularitySystem::GregorianDays({CivilDate{1970, 1, 5}});
  const Granularity& b_day = *system->Find("b-day");
  EXPECT_EQ(system->tables().MaxSize(b_day, 2), 5);
  // min quantities are unaffected (clean stretches still exist).
  EXPECT_EQ(system->tables().MinSize(b_day, 2), 2);
  EXPECT_EQ(system->tables().MinGap(b_day, 1), 1);
}

TEST(SecondTablesTest, PaperDayConversionExample) {
  // §3: [0,0]day spans 0..86399 seconds at most — maxsize(day,1) in seconds.
  auto system = GranularitySystem::Gregorian();
  const Granularity& day = *system->Find("day");
  EXPECT_EQ(system->tables().MaxSize(day, 1), 86400);
  EXPECT_EQ(system->tables().MinSize(day, 1), 86400);
}

TEST(SyntheticTablesTest, GappedToyValues) {
  GranularitySystem system;
  // Ticks [0,2] and [5,6] per period of 10.
  const Granularity* toy = system.AddSynthetic(
      "toy", 10, {TimeSpan::Of(0, 2), TimeSpan::Of(5, 6)});
  EXPECT_EQ(system.tables().MinSize(*toy, 1), 2);   // [5,6]
  EXPECT_EQ(system.tables().MaxSize(*toy, 1), 3);   // [0,2]
  EXPECT_EQ(system.tables().MinSize(*toy, 2), 7);   // [0..6]
  EXPECT_EQ(system.tables().MaxSize(*toy, 2), 8);   // [5..12]
  EXPECT_EQ(system.tables().MinGap(*toy, 1), 3);  // 5-2=3 vs 10-6=4
  EXPECT_EQ(system.tables().MinGap(*toy, 2), 8);  // 10-2=8 vs 15-6=9
}

}  // namespace
}  // namespace granmine
