#include "granmine/tag/chains.h"

#include <gtest/gtest.h>

#include <set>

#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"
#include "granmine/tag/max_flow.h"

namespace granmine {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow flow(2);
  int e = flow.AddEdge(0, 1, 5);
  EXPECT_EQ(flow.Compute(0, 1), 5);
  EXPECT_EQ(flow.FlowOn(e), 5);
  EXPECT_EQ(flow.ResidualOn(e), 0);
}

TEST(MaxFlowTest, BottleneckPath) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 10);
  int mid = flow.AddEdge(1, 2, 3);
  flow.AddEdge(2, 3, 10);
  EXPECT_EQ(flow.Compute(0, 3), 3);
  EXPECT_EQ(flow.FlowOn(mid), 3);
}

TEST(MaxFlowTest, ParallelPaths) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 2);
  flow.AddEdge(1, 3, 2);
  flow.AddEdge(0, 2, 3);
  flow.AddEdge(2, 3, 3);
  EXPECT_EQ(flow.Compute(0, 3), 5);
}

TEST(MaxFlowTest, ClassicDiamondWithCross) {
  MaxFlow flow(6);
  flow.AddEdge(0, 1, 10);
  flow.AddEdge(0, 2, 10);
  flow.AddEdge(1, 2, 2);
  flow.AddEdge(1, 3, 4);
  flow.AddEdge(2, 4, 9);
  flow.AddEdge(3, 5, 10);
  flow.AddEdge(4, 5, 10);
  EXPECT_EQ(flow.Compute(0, 5), 13);
}

class ChainsTest : public testing::Test {
 protected:
  ChainsTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity* day() { return system_->Find("day"); }
  // Asserts the decomposition covers every arc and each chain is a valid
  // root-to-sink path.
  void CheckCover(const EventStructure& s,
                  const std::vector<std::vector<VariableId>>& chains) {
    VariableId root = *s.FindRoot();
    std::set<std::pair<VariableId, VariableId>> covered;
    std::set<VariableId> has_outgoing;
    for (const auto& edge : s.edges()) has_outgoing.insert(edge.from);
    for (const auto& chain : chains) {
      ASSERT_FALSE(chain.empty());
      EXPECT_EQ(chain.front(), root);
      EXPECT_EQ(has_outgoing.count(chain.back()), 0u) << "must end at a sink";
      for (std::size_t i = 1; i < chain.size(); ++i) {
        ASSERT_NE(s.FindEdge(chain[i - 1], chain[i]), nullptr);
        covered.emplace(chain[i - 1], chain[i]);
      }
    }
    EXPECT_EQ(covered.size(), s.edges().size()) << "every arc covered";
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(ChainsTest, SingleVariable) {
  EventStructure s;
  s.AddVariable("X0");
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 1u);
  EXPECT_EQ((*chains)[0], std::vector<VariableId>{0});
}

TEST_F(ChainsTest, SimplePathIsOneChain) {
  EventStructure s;
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  VariableId c = s.AddVariable("C");
  ASSERT_TRUE(s.AddConstraint(a, b, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(b, c, Tcg::Same(day())).ok());
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  ASSERT_EQ(chains->size(), 1u);
  CheckCover(s, *chains);
}

TEST_F(ChainsTest, Figure1aNeedsTwoChains) {
  auto seconds = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*seconds);
  ASSERT_TRUE(fig1a.ok());
  auto chains = DecomposeChains(*fig1a);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 2u);  // the paper's p = 2 for Example 1
  CheckCover(*fig1a, *chains);
}

TEST_F(ChainsTest, FanOutNeedsOneChainPerSink) {
  EventStructure s;
  VariableId root = s.AddVariable("R");
  for (int i = 0; i < 4; ++i) {
    VariableId leaf = s.AddVariable("L" + std::to_string(i));
    ASSERT_TRUE(s.AddConstraint(root, leaf, Tcg::Same(day())).ok());
  }
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 4u);
  CheckCover(s, *chains);
}

TEST_F(ChainsTest, DiamondIsTwoChains) {
  EventStructure s;
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  VariableId c = s.AddVariable("C");
  VariableId d = s.AddVariable("D");
  ASSERT_TRUE(s.AddConstraint(a, b, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(a, c, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(b, d, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(c, d, Tcg::Same(day())).ok());
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 2u);
  CheckCover(s, *chains);
}

TEST_F(ChainsTest, WideMiddleForcesManyChains) {
  // root -> m1..m3 -> sink: 3 chains needed (middle arcs are disjoint).
  EventStructure s;
  VariableId root = s.AddVariable("R");
  VariableId sink = s.AddVariable("S");
  for (int i = 0; i < 3; ++i) {
    VariableId mid = s.AddVariable("M" + std::to_string(i));
    ASSERT_TRUE(s.AddConstraint(root, mid, Tcg::Same(day())).ok());
    ASSERT_TRUE(s.AddConstraint(mid, sink, Tcg::Same(day())).ok());
  }
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 3u);
  CheckCover(s, *chains);
}

TEST_F(ChainsTest, SkewedDagMinimality) {
  // root->a, root->b, a->b: chains root-a-b and root-b cover all 3 arcs.
  EventStructure s;
  VariableId root = s.AddVariable("R");
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  ASSERT_TRUE(s.AddConstraint(root, a, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(root, b, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(a, b, Tcg::Same(day())).ok());
  auto chains = DecomposeChains(s);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(chains->size(), 2u);
  CheckCover(s, *chains);
}

TEST_F(ChainsTest, UnrootedFails) {
  EventStructure s;
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  VariableId c = s.AddVariable("C");
  ASSERT_TRUE(s.AddConstraint(a, c, Tcg::Same(day())).ok());
  ASSERT_TRUE(s.AddConstraint(b, c, Tcg::Same(day())).ok());
  EXPECT_FALSE(DecomposeChains(s).ok());
}

}  // namespace
}  // namespace granmine
