// Unit tests for the streaming layer's RingBuffer: logical-order indexing
// across wraparound, push_back exactly at capacity (the Grow path with a
// non-zero head), and pop_front resource release.

#include "granmine/common/ring_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace granmine {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(RingBufferTest, PushPopPreservesFifoOrder) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 5; ++i) buffer.push_back(i);
  ASSERT_EQ(buffer.size(), 5u);
  EXPECT_EQ(buffer.front(), 0);
  EXPECT_EQ(buffer.back(), 4);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(buffer.front(), i);
    buffer.pop_front();
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBufferTest, IndexingIsLogicalInsertionOrder) {
  RingBuffer<int> buffer;
  // Drive head_ away from 0 so Physical(i) != i, then check operator[].
  for (int i = 0; i < 12; ++i) buffer.push_back(i);
  for (int i = 0; i < 9; ++i) buffer.pop_front();
  for (int i = 12; i < 20; ++i) buffer.push_back(i);
  ASSERT_EQ(buffer.size(), 11u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<int>(i) + 9) << "logical index " << i;
  }
}

// The wraparound regression the streaming layer depends on: after interleaved
// push/pop the live range straddles the physical end of the array; pushing
// exactly when count_ == capacity must regrow without reordering.
TEST(RingBufferTest, PushAtExactCapacityWithWrappedHead) {
  RingBuffer<std::string> buffer;
  // First Grow allocates 8 slots. Fill them, retire 5, refill to exactly 8
  // live elements with head_ = 5 — the next push lands on the Grow path with
  // a wrapped layout.
  for (int i = 0; i < 8; ++i) buffer.push_back("v" + std::to_string(i));
  for (int i = 0; i < 5; ++i) buffer.pop_front();
  for (int i = 8; i < 13; ++i) buffer.push_back("v" + std::to_string(i));
  ASSERT_EQ(buffer.size(), 8u);  // capacity reached, head wrapped

  buffer.push_back("v13");  // triggers Grow with head_ != 0
  ASSERT_EQ(buffer.size(), 9u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], "v" + std::to_string(i + 5));
  }
  EXPECT_EQ(buffer.front(), "v5");
  EXPECT_EQ(buffer.back(), "v13");
}

TEST(RingBufferTest, ManyWrapCyclesStayConsistent) {
  RingBuffer<int> buffer;
  int next_in = 0;
  int next_out = 0;
  // A long alternating push/pop run cycles head_ through every physical slot
  // several times without growing.
  for (int round = 0; round < 100; ++round) {
    buffer.push_back(next_in++);
    buffer.push_back(next_in++);
    EXPECT_EQ(buffer.front(), next_out);
    buffer.pop_front();
    ++next_out;
  }
  ASSERT_EQ(buffer.size(), 100u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], next_out + static_cast<int>(i));
  }
}

// pop_front must drop the element's resources immediately (the streaming
// layer retires whole committed groups this way), not when the slot is
// eventually overwritten.
TEST(RingBufferTest, PopFrontReleasesOwnedResources) {
  RingBuffer<std::shared_ptr<int>> buffer;
  auto tracked = std::make_shared<int>(42);
  std::weak_ptr<int> watch = tracked;
  buffer.push_back(std::move(tracked));
  buffer.push_back(std::make_shared<int>(7));
  ASSERT_FALSE(watch.expired());
  buffer.pop_front();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(*buffer.front(), 7);
}

// The persistence layer encodes the retention window by walking operator[]
// from 0 to size(): a checkpoint taken after any interleaving of pushes,
// pops, and regrowths must see the elements in logical insertion order.
// Differential against std::deque under a deterministic LCG-driven schedule
// that forces several Grow calls with a wrapped head.
TEST(RingBufferTest, LogicalOrderSurvivesInterleavedGrowthDifferential) {
  RingBuffer<int> buffer;
  std::deque<int> reference;
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  int next = 0;
  for (int step = 0; step < 4000; ++step) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Biased towards push so the buffer repeatedly reaches capacity (and
    // grows) while head_ is mid-array from the pops.
    if ((state >> 60) < 11 || reference.empty()) {
      buffer.push_back(next);
      reference.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(buffer.front(), reference.front()) << "step " << step;
      buffer.pop_front();
      reference.pop_front();
    }
  }
  ASSERT_EQ(buffer.size(), reference.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], reference[i]) << "logical index " << i;
  }
}

// Consecutive regrowths, each triggered with a freshly wrapped head: every
// doubling must relinearize the live range without losing logical order.
TEST(RingBufferTest, RepeatedGrowthWithWrappedHeadKeepsOrder) {
  RingBuffer<int> buffer;
  int next = 0;
  int retired = 0;
  for (int round = 0; round < 6; ++round) {
    // Retire a third of the live elements so head_ is mid-array, then push
    // until the buffer must have regrown past its previous capacity.
    const std::size_t before = buffer.size();
    for (std::size_t i = 0; i < before / 3; ++i) {
      ASSERT_EQ(buffer.front(), retired);
      buffer.pop_front();
      ++retired;
    }
    const std::size_t target = before * 2 + 8;
    while (buffer.size() < target) buffer.push_back(next++);
    ASSERT_EQ(buffer.size(), target);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      ASSERT_EQ(buffer[i], retired + static_cast<int>(i))
          << "round " << round << " logical index " << i;
    }
  }
}

TEST(RingBufferTest, CopyPreservesLogicalOrder) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 10; ++i) buffer.push_back(i);
  for (int i = 0; i < 7; ++i) buffer.pop_front();
  for (int i = 10; i < 16; ++i) buffer.push_back(i);

  RingBuffer<int> copy = buffer;
  ASSERT_EQ(copy.size(), buffer.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy[i], buffer[i]);
  }
  // Mutating the copy must not alias the original.
  copy.pop_front();
  EXPECT_EQ(buffer.front(), 7);
  EXPECT_EQ(copy.front(), 8);
}

TEST(RingBufferTest, ClearResetsToEmpty) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 20; ++i) buffer.push_back(i);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  buffer.push_back(99);
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.front(), 99);
}

}  // namespace
}  // namespace granmine
