#include "granmine/constraint/convert_constraint.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

class ConvertConstraintTest : public testing::Test {
 protected:
  ConvertConstraintTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity& Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return *g;
  }
  GranularityTables& tables() { return system_->tables(); }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(ConvertConstraintTest, DayToMonthExamples) {
  const Granularity& day = Get("day");
  const Granularity& month = Get("month");
  // Same day => months differ by at most 1 (and that is the paper bound:
  // minsize(month,1)=28 >= maxsize(day,1)-1=0... covered by 0 ticks? no:
  // D=0 means identical instants, same month).
  EXPECT_EQ(ConvertBounds(tables(), day, month, Bounds::Of(0, 0)),
            Bounds::Of(0, 0));
  // Adjacent days can straddle a month boundary.
  EXPECT_EQ(ConvertBounds(tables(), day, month, Bounds::Of(0, 1)),
            Bounds::Of(0, 1));
  // 40 days apart: at least 1 month boundary crossed... maxsize(month,2)=62
  // > mingap(day,40)=40 fails; r with maxsize(month,r)>40 is 2 => lo=1.
  Bounds b = ConvertBounds(tables(), day, month, Bounds::Of(40, 40));
  EXPECT_EQ(b.lo, 1);
  EXPECT_EQ(b.hi, 2);
}

TEST_F(ConvertConstraintTest, MonthToDayExamples) {
  const Granularity& day = Get("day");
  const Granularity& month = Get("month");
  // Next month: 1..61 days apart (Jan 31 -> Feb 1 is 1 day; Jul 1 -> Aug 31
  // is 61 days).
  EXPECT_EQ(ConvertBounds(tables(), month, day, Bounds::Of(1, 1)),
            Bounds::Of(1, 61));
  // Same month: 0..30 days apart.
  EXPECT_EQ(ConvertBounds(tables(), month, day, Bounds::Of(0, 0)),
            Bounds::Of(0, 30));
}

TEST_F(ConvertConstraintTest, YearToMonthExample) {
  // Same year: within 12 months (the slack Figure 1(b) exploits —
  // the tight per-structure bound would be 11, but conversion alone cannot
  // know both events are in the same year span).
  Bounds b = ConvertBounds(tables(), Get("year"), Get("month"),
                           Bounds::Of(0, 0));
  EXPECT_EQ(b.lo, 0);
  EXPECT_EQ(b.hi, 12);
}

TEST_F(ConvertConstraintTest, NoFiniteEquivalentMarker) {
  // Converting an unbounded interval stays unbounded.
  const Granularity& day = Get("day");
  EXPECT_EQ(ConvertUpperBound(tables(), day, Get("month"), kInfinity),
            kInfinity);
}

TEST_F(ConvertConstraintTest, TcgWrapperChecksFeasibility) {
  SupportCoverageCache& coverage = system_->coverage();
  Tcg b_day_tcg = Tcg::Of(0, 5, &Get("b-day"));
  // b-day converts into day (full support target)...
  std::optional<Tcg> to_day =
      ConvertTcg(tables(), coverage, b_day_tcg, Get("day"));
  ASSERT_TRUE(to_day.has_value());
  EXPECT_EQ(to_day->granularity, &Get("day"));
  EXPECT_EQ(to_day->min, 0);
  // 6 consecutive b-days span at most 8 days => day distance <= 7.
  EXPECT_EQ(to_day->max, 7);
  // ...but day does NOT convert into b-day (weekends uncovered).
  EXPECT_EQ(ConvertTcg(tables(), coverage, Tcg::Of(0, 5, &Get("day")),
                       Get("b-day")),
            std::nullopt);
  // Identity conversion is a no-op.
  std::optional<Tcg> same =
      ConvertTcg(tables(), coverage, b_day_tcg, Get("b-day"));
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->max, 5);
}

TEST_F(ConvertConstraintTest, TightRuleNeverLooser) {
  Rng rng(5);
  const Granularity* types[] = {&Get("day"), &Get("week"), &Get("month"),
                                &Get("b-day"), &Get("b-week"),
                                &Get("b-month"), &Get("year")};
  for (int trial = 0; trial < 200; ++trial) {
    const Granularity& source = *types[rng.Index(std::size(types))];
    const Granularity& target = *types[rng.Index(std::size(types))];
    if (&source == &target) continue;
    if (!SupportCovers(target, source)) continue;
    std::int64_t n = rng.Uniform(0, 40);
    std::int64_t paper = ConvertUpperBound(tables(), source, target, n,
                                           ConversionRule::kPaper);
    std::int64_t tight = ConvertUpperBound(tables(), source, target, n,
                                           ConversionRule::kTight);
    EXPECT_LE(tight, paper) << source.name() << "->" << target.name()
                            << " n=" << n;
  }
}

// The central soundness property (what Theorem 2's proof needs from the
// Appendix algorithm): any timestamp pair satisfying the source constraint
// satisfies the converted constraint.
TEST_F(ConvertConstraintTest, ConversionIsSound) {
  Rng rng(99);
  SupportCoverageCache& coverage = system_->coverage();
  const Granularity* types[] = {&Get("day"), &Get("week"), &Get("month"),
                                &Get("b-day"), &Get("b-week"),
                                &Get("b-month"), &Get("year")};
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const Granularity& source = *types[rng.Index(std::size(types))];
    const Granularity& target = *types[rng.Index(std::size(types))];
    if (&source == &target) continue;
    std::int64_t m = rng.Uniform(0, 10);
    std::int64_t n = m + rng.Uniform(0, 10);
    Tcg tcg = Tcg::Of(m, n, &source);
    for (ConversionRule rule :
         {ConversionRule::kPaper, ConversionRule::kTight}) {
      std::optional<Tcg> converted =
          ConvertTcg(tables(), coverage, tcg, target, rule);
      if (!converted.has_value()) continue;
      // Sample satisfying pairs of the source constraint.
      for (int s = 0; s < 20; ++s) {
        TimePoint t1 = rng.Uniform(0, 2000);
        std::optional<Tick> z1 = source.TickContaining(t1);
        if (!z1.has_value()) continue;
        std::optional<TimeSpan> hull =
            source.TickHull(*z1 + rng.Uniform(m, n));
        ASSERT_TRUE(hull.has_value());
        TimePoint t2 = rng.Uniform(hull->first, hull->last);
        if (!Satisfies(tcg, t1, t2)) continue;  // t2 may be < t1 or in a gap
        ++checked;
        EXPECT_TRUE(Satisfies(*converted, t1, t2))
            << tcg.ToString() << " -> " << converted->ToString() << " t1="
            << t1 << " t2=" << t2;
      }
    }
  }
  EXPECT_GT(checked, 500);  // the property actually exercised many pairs
}

TEST_F(ConvertConstraintTest, SecondsDayInequivalence) {
  // §3's motivating claim: [0,0]day admits pairs up to 86399 seconds apart,
  // yet [0,86399]second accepts cross-midnight pairs that [0,0]day rejects.
  auto seconds_system = GranularitySystem::Gregorian();
  const Granularity& day = *seconds_system->Find("day");
  const Granularity& second = *seconds_system->Find("second");
  Bounds converted = ConvertBounds(seconds_system->tables(), day, second,
                                   Bounds::Of(0, 0));
  EXPECT_EQ(converted, Bounds::Of(0, 86399));
  // The conversion is an implication, not an equivalence:
  TimePoint t1 = 23 * 3600, t2 = 86400 + 4 * 3600;
  EXPECT_TRUE(Satisfies(Tcg::Of(0, 86399, &second), t1, t2));
  EXPECT_FALSE(Satisfies(Tcg::Same(&day), t1, t2));
}

}  // namespace
}  // namespace granmine
