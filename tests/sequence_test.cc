#include "granmine/sequence/sequence.h"

#include <gtest/gtest.h>

#include "granmine/constraint/exact.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"
#include "granmine/tag/oracle.h"

namespace granmine {
namespace {

TEST(EventTypeRegistryTest, InternAndLookup) {
  EventTypeRegistry registry;
  EventTypeId a = registry.Intern("deposit");
  EventTypeId b = registry.Intern("withdrawal");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.Intern("deposit"), a);
  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.name(a), "deposit");
  EXPECT_EQ(registry.Find("withdrawal"), b);
  EXPECT_EQ(registry.Find("unknown"), std::nullopt);
}

TEST(EventSequenceTest, SortsOnAccess) {
  EventSequence seq;
  seq.Add(0, 30);
  seq.Add(1, 10);
  seq.Add(2, 20);
  const std::vector<Event>& events = seq.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[1].time, 20);
  EXPECT_EQ(events[2].time, 30);
}

TEST(EventSequenceTest, StableForEqualTimestamps) {
  EventSequence seq;
  seq.Add(5, 10);
  seq.Add(6, 10);
  seq.Add(7, 10);
  EXPECT_EQ(seq.events()[0].type, 5);
  EXPECT_EQ(seq.events()[1].type, 6);
  EXPECT_EQ(seq.events()[2].type, 7);
}

TEST(EventSequenceTest, OccurrencesAndCounts) {
  EventSequence seq;
  seq.Add(0, 1);
  seq.Add(1, 2);
  seq.Add(0, 3);
  EXPECT_EQ(seq.OccurrencesOf(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(seq.CountOf(0), 2u);
  EXPECT_EQ(seq.CountOf(9), 0u);
  EXPECT_EQ(seq.SuffixFrom(1).size(), 2u);
  EXPECT_EQ(seq.DistinctTypes(), (std::vector<EventTypeId>{0, 1}));
}

TEST(EventSequenceTest, Filter) {
  EventSequence seq;
  for (int i = 0; i < 10; ++i) seq.Add(i % 2, i);
  EventSequence evens =
      seq.Filter([](const Event& e) { return e.type == 0; });
  EXPECT_EQ(evens.size(), 5u);
  for (const Event& e : evens.events()) EXPECT_EQ(e.type, 0);
}

TEST(GeneratorsTest, RandomWorkloadShape) {
  RandomWorkloadOptions options;
  options.type_count = 5;
  options.length = 500;
  options.seed = 42;
  Workload workload = MakeRandomWorkload(options);
  EXPECT_EQ(workload.sequence.size(), 500u);
  EXPECT_EQ(workload.registry.size(), 5);
  // Deterministic for a fixed seed.
  Workload again = MakeRandomWorkload(options);
  EXPECT_EQ(workload.sequence.events(), again.sequence.events());
  // Timestamps strictly increasing (gaps >= 1).
  for (std::size_t i = 1; i < workload.sequence.size(); ++i) {
    EXPECT_GT(workload.sequence.events()[i].time,
              workload.sequence.events()[i - 1].time);
  }
}

TEST(GeneratorsTest, StockWorkloadPlantsRealPatterns) {
  auto system = GranularitySystem::Gregorian();
  StockWorkloadOptions options;
  options.trading_days = 60;
  options.plant_probability = 1.0;  // plant at every anchor
  options.noise_events_per_day = 0.0;
  options.seed = 7;
  Workload workload = MakeStockWorkload(*system, options);
  EXPECT_GT(workload.planted, 5u);

  // Every planted pattern is a §3 occurrence of the Figure-1(a) type.
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  std::vector<EventTypeId> phi = {
      *workload.registry.Find("IBM-rise"),
      *workload.registry.Find("IBM-earnings-report"),
      *workload.registry.Find("HP-rise"),
      *workload.registry.Find("IBM-fall")};
  std::size_t matched = 0;
  for (std::size_t at : workload.sequence.OccurrencesOf(phi[0])) {
    OracleOptions anchored;
    anchored.anchored_root_index = 0;
    if (OccursBruteForce(*fig1a, phi, workload.sequence.SuffixFrom(at),
                         anchored)) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, workload.planted);
}

TEST(GeneratorsTest, StockWorkloadUnplantedAnchorsDontMatch) {
  auto system = GranularitySystem::Gregorian();
  StockWorkloadOptions options;
  options.trading_days = 60;
  options.plant_probability = 0.0;  // only lone anchors
  options.noise_events_per_day = 0.0;
  Workload workload = MakeStockWorkload(*system, options);
  EXPECT_EQ(workload.planted, 0u);
  auto fig1a = BuildFigure1a(*system);
  ASSERT_TRUE(fig1a.ok());
  EventTypeId rise = *workload.registry.Find("IBM-rise");
  std::vector<EventTypeId> phi = {
      rise, *workload.registry.Find("IBM-earnings-report"),
      *workload.registry.Find("HP-rise"),
      *workload.registry.Find("IBM-fall")};
  for (std::size_t at : workload.sequence.OccurrencesOf(rise)) {
    OracleOptions anchored;
    anchored.anchored_root_index = 0;
    EXPECT_FALSE(OccursBruteForce(*fig1a, phi,
                                  workload.sequence.SuffixFrom(at), anchored));
  }
}

TEST(GeneratorsTest, AtmWorkloadIsPopulated) {
  auto system = GranularitySystem::Gregorian();
  AtmWorkloadOptions options;
  options.days = 30;
  options.accounts = 2;
  options.seed = 3;
  Workload workload = MakeAtmWorkload(*system, options);
  EXPECT_GT(workload.sequence.size(), 20u);
  EXPECT_TRUE(workload.registry.Find("deposit-acct0").has_value());
  EXPECT_TRUE(workload.registry.Find("alert-acct1").has_value());
  // Planted cascades satisfy same-day and two-day constraints by design.
  EXPECT_GT(workload.planted, 0u);
}

TEST(GeneratorsTest, PlantWorkloadCascades) {
  auto system = GranularitySystem::Gregorian();
  PlantWorkloadOptions options;
  options.days = 30;
  options.cascade_probability = 1.0;
  Workload workload = MakePlantWorkload(*system, options);
  EXPECT_GT(workload.planted, 0u);
  EventTypeId shutdown = *workload.registry.Find("emergency-shutdown");
  EXPECT_EQ(workload.sequence.CountOf(shutdown), workload.planted);
}

}  // namespace
}  // namespace granmine
