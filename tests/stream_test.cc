// Differential gate for the streaming subsystem: OnlineMiner snapshots must
// be byte-identical (FormatReport) to a batch Mine with the equivalent
// options over the canonical retained prefix — at every prefix, at every
// thread count, under injected kMine governor faults, out of order within
// tolerance, and across retention eviction. Run under sanitizers via the
// ctest "sanitizer" label.

#include "granmine/stream/online_miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"

namespace granmine {
namespace {

std::string FormatReport(const MiningReport& report) {
  std::string out;
  char buffer[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out += buffer;
  };
  append("roots=%zu events=%zu/%zu cand=%llu/%llu runs=%llu configs=%llu\n",
         report.total_roots, report.events_before,
         report.events_after_reduction,
         static_cast<unsigned long long>(report.candidates_before),
         static_cast<unsigned long long>(report.candidates_after_screening),
         static_cast<unsigned long long>(report.tag_runs),
         static_cast<unsigned long long>(report.matcher_configurations));
  append("roots_reduced=%zu refuted_by_propagation=%d\n",
         report.roots_after_reduction, report.refuted_by_propagation ? 1 : 0);
  const MiningCompleteness& c = report.completeness;
  append("complete=%d stop=%d confirmed=%llu refuted=%llu unknown=%llu "
         "not_evaluated=%llu\n",
         c.complete ? 1 : 0, static_cast<int>(c.stop),
         static_cast<unsigned long long>(c.confirmed),
         static_cast<unsigned long long>(c.refuted),
         static_cast<unsigned long long>(c.unknown),
         static_cast<unsigned long long>(c.not_evaluated));
  for (const DiscoveredType& solution : report.solutions) {
    out += "sol";
    for (EventTypeId type : solution.assignment) {
      append(" %d", type);
    }
    append(" matched=%zu freq=%.17g\n", solution.matched_roots,
           solution.frequency);
  }
  for (const UnknownCandidate& unknown : report.unknown_sample) {
    out += "unk";
    for (EventTypeId type : unknown.assignment) {
      append(" %d", type);
    }
    append(" reason=%d\n", static_cast<int>(unknown.reason));
  }
  return out;
}

// The canonical sequence a snapshot is compared against: (time, type) order.
EventSequence Canonical(std::span<const Event> events) {
  std::vector<Event> sorted(events.begin(), events.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.type < b.type;
                   });
  return EventSequence(std::move(sorted));
}

class StreamTest : public testing::Test {
 protected:
  static constexpr int kTypeCount = 6;

  StreamTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 8, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 8, unit_)).ok());
    // Deterministic pseudo-random arrivals with frequent equal-timestamp
    // groups (time advances by 0 or 1), so group-suffix anchoring and
    // canonical intra-group ordering are genuinely exercised.
    std::uint64_t state = 0x51ed2701afe4c9b3ULL;
    TimePoint t = 1;
    for (int i = 0; i < 48; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      t += static_cast<TimePoint>((state >> 33) % 2);
      events_.push_back(
          Event{static_cast<EventTypeId>((state >> 13) % kTypeCount), t});
    }
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    // Streaming requires explicit σ; the batch side uses the same sets.
    problem_.allowed.assign(3, {});
    problem_.allowed[1] = {0, 1, 2, 3, 4, 5};
    problem_.allowed[2] = {0, 1, 2, 3, 4, 5};
  }

  MiningReport BatchMine(std::span<const Event> prefix, int threads,
                         const ResourceGovernor* governor = nullptr) {
    OnlineMinerOptions options;
    options.num_threads = threads;
    Miner miner(&toy_, options.BatchEquivalent());
    Result<MiningReport> report =
        miner.Mine(problem_, Canonical(prefix), governor);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? std::move(*report) : MiningReport{};
  }

  OnlineMiner MakeStream(OnlineMinerOptions options) {
    Result<OnlineMiner> miner = OnlineMiner::Create(&toy_, problem_, options);
    EXPECT_TRUE(miner.ok()) << miner.status();
    return std::move(*miner);
  }

  MiningReport StreamMine(std::span<const Event> prefix, int threads,
                          const ResourceGovernor* governor = nullptr) {
    OnlineMinerOptions options;
    options.num_threads = threads;
    OnlineMiner miner = MakeStream(options);
    for (const Event& event : prefix) {
      EXPECT_TRUE(miner.Ingest(event).ok());
    }
    Result<MiningReport> report = miner.Snapshot(governor);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? std::move(*report) : MiningReport{};
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  std::vector<Event> events_;
  DiscoveryProblem problem_;
};

// The tentpole invariant: a snapshot after ingesting any prefix is
// byte-identical to a batch Mine over that prefix (events still in the
// reorder buffer included).
TEST_F(StreamTest, SnapshotMatchesBatchAtEveryPrefix) {
  for (std::size_t p = 0; p <= events_.size(); ++p) {
    std::span<const Event> prefix(events_.data(), p);
    const std::string want = FormatReport(BatchMine(prefix, 1));
    const std::string got = FormatReport(StreamMine(prefix, 1));
    ASSERT_EQ(want, got) << "prefix length " << p;
  }
}

TEST_F(StreamTest, SnapshotIsByteIdenticalAcrossThreadCounts) {
  const std::string want = FormatReport(BatchMine(events_, 1));
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(want, FormatReport(BatchMine(events_, threads)))
        << "batch threads=" << threads;
    EXPECT_EQ(want, FormatReport(StreamMine(events_, threads)))
        << "stream threads=" << threads;
  }
}

// One snapshot per ingested prefix from a single long-lived miner — the
// running-snapshot use case — must equal the fresh-miner result.
TEST_F(StreamTest, RunningSnapshotsNeverPerturbTheStream) {
  OnlineMinerOptions options;
  options.num_threads = 2;
  OnlineMiner miner = MakeStream(options);
  for (std::size_t p = 0; p < events_.size(); ++p) {
    ASSERT_TRUE(miner.Ingest(events_[p]).ok());
    if (p % 7 != 6) continue;  // snapshot every 7th event
    std::span<const Event> prefix(events_.data(), p + 1);
    Result<MiningReport> got = miner.Snapshot();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(FormatReport(BatchMine(prefix, 1)), FormatReport(*got))
        << "prefix length " << p + 1;
  }
  Result<MiningReport> final_report = miner.Snapshot();
  ASSERT_TRUE(final_report.ok());
  EXPECT_EQ(FormatReport(BatchMine(events_, 1)), FormatReport(*final_report));
}

// Local (cancel_globally = false) kMine faults degrade candidates at index
// >= trip to unknown, deterministically: streaming snapshots under
// injection stay byte-identical to the injected batch run, at every
// injection point and thread count. The acceptance gate asks for >= 20
// injection points; the sweep covers the whole candidate space (36) plus
// the no-trip edges.
TEST_F(StreamTest, MineScopeFaultSweepMatchesBatch) {
  const MiningReport full = BatchMine(events_, 1);
  ASSERT_TRUE(full.completeness.complete);
  const std::uint64_t total = full.candidates_after_screening;
  ASSERT_GE(total, 25u);

  for (std::uint64_t trip = 0; trip <= total + 2; ++trip) {
    GovernorLimits limits;
    limits.check_stride = 1;
    FaultInjector injector(GovernorScope::kMine, trip,
                           /*cancel_globally=*/false);
    std::string want;
    {
      ResourceGovernor governor(limits);
      governor.InstallFaultInjector(&injector);
      want = FormatReport(BatchMine(events_, 1, &governor));
    }
    for (int threads : {1, 4}) {
      ResourceGovernor governor(limits);
      governor.InstallFaultInjector(&injector);
      ASSERT_EQ(want, FormatReport(StreamMine(events_, threads, &governor)))
          << "trip=" << trip << " threads=" << threads;
    }
  }
}

// Any arrival order the tolerance admits commits the same canonical groups,
// so the snapshot cannot tell the orders apart.
TEST_F(StreamTest, OutOfOrderArrivalWithinToleranceMatchesBatch) {
  // Deterministic bounded shuffle: reverse runs of 5 consecutive arrivals.
  std::vector<Event> shuffled = events_;
  for (std::size_t i = 0; i + 5 <= shuffled.size(); i += 5) {
    std::reverse(shuffled.begin() + static_cast<std::ptrdiff_t>(i),
                 shuffled.begin() + static_cast<std::ptrdiff_t>(i + 5));
  }
  // The tolerance this arrival order needs: max regression below the
  // running maximum.
  std::int64_t tolerance = 0;
  TimePoint max_seen = shuffled.front().time;
  for (const Event& event : shuffled) {
    max_seen = std::max(max_seen, event.time);
    tolerance = std::max(tolerance, max_seen - event.time);
  }
  ASSERT_GT(tolerance, 0);  // the shuffle must be genuinely out of order

  OnlineMinerOptions options;
  options.tolerance = tolerance;
  options.num_threads = 2;
  OnlineMiner miner = MakeStream(options);
  for (const Event& event : shuffled) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  Result<MiningReport> got = miner.Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(FormatReport(BatchMine(events_, 1)), FormatReport(*got));
}

TEST_F(StreamTest, LateEventsAreRejectedWithoutCorruptingTheStream) {
  OnlineMinerOptions options;
  options.tolerance = 2;
  OnlineMiner miner = MakeStream(options);
  for (const Event& event : events_) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  const TimePoint last = events_.back().time;
  // Within tolerance: accepted even though it is behind the maximum.
  EXPECT_TRUE(miner.Ingest(1, last - 2).ok());
  // Beyond tolerance: a deterministic InvalidArgument; stream stays usable.
  Status late = miner.Ingest(1, last - 3);
  EXPECT_FALSE(late.ok());
  Status late_again = miner.Ingest(1, last - 3);
  EXPECT_EQ(late.ToString(), late_again.ToString());
  EXPECT_EQ(miner.late_events(), 2u);
  // The snapshot covers exactly the accepted events.
  std::vector<Event> accepted = events_;
  accepted.push_back(Event{1, last - 2});
  Result<MiningReport> got = miner.Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(FormatReport(BatchMine(accepted, 1)), FormatReport(*got));
}

// Eviction retracts roots and counts: the snapshot equals a batch run over
// exactly the retained suffix (time >= horizon).
TEST_F(StreamTest, RetentionEvictsOldGroupsAndRetractsTheirCounts) {
  for (std::int64_t retention : {0, 2, 5, 10}) {
    OnlineMinerOptions options;
    options.retention = retention;
    OnlineMiner miner = MakeStream(options);
    for (const Event& event : events_) {
      ASSERT_TRUE(miner.Ingest(event).ok());
    }
    const TimePoint horizon = miner.horizon();
    std::vector<Event> retained;
    for (const Event& event : events_) {
      if (event.time >= horizon) retained.push_back(event);
    }
    ASSERT_LT(retained.size(), events_.size()) << "retention=" << retention;
    Result<MiningReport> got = miner.Snapshot();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(FormatReport(BatchMine(retained, 1)), FormatReport(*got))
        << "retention=" << retention;
  }
}

TEST_F(StreamTest, SealFlushesTheBufferAndRejectsFurtherArrivals) {
  OnlineMinerOptions options;
  options.tolerance = 4;
  OnlineMiner miner = MakeStream(options);
  for (const Event& event : events_) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  EXPECT_GT(miner.buffered_events(), 0u);
  miner.Seal();
  EXPECT_EQ(miner.buffered_events(), 0u);
  EXPECT_FALSE(miner.Ingest(0, events_.back().time + 100).ok());
  Result<MiningReport> got = miner.Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(FormatReport(BatchMine(events_, 1)), FormatReport(*got));
}

TEST_F(StreamTest, InconsistentStructureIsRefutedLikeBatch) {
  EventStructure contradiction;
  VariableId a = contradiction.AddVariable("A");
  VariableId b = contradiction.AddVariable("B");
  ASSERT_TRUE(contradiction.AddConstraint(a, b, Tcg::Of(5, 8, unit_)).ok());
  ASSERT_TRUE(contradiction.AddConstraint(a, b, Tcg::Of(0, 2, unit_)).ok());
  DiscoveryProblem impossible = problem_;
  impossible.structure = &contradiction;
  impossible.allowed.assign(2, {});
  impossible.allowed[1] = {0, 1, 2, 3, 4, 5};

  Result<OnlineMiner> miner =
      OnlineMiner::Create(&toy_, impossible, OnlineMinerOptions{});
  ASSERT_TRUE(miner.ok()) << miner.status();
  for (const Event& event : events_) {
    ASSERT_TRUE(miner->Ingest(event).ok());
  }
  Result<MiningReport> got = miner->Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->refuted_by_propagation);

  Miner batch(&toy_, OnlineMinerOptions{}.BatchEquivalent());
  Result<MiningReport> want = batch.Mine(impossible, Canonical(events_));
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(FormatReport(*want), FormatReport(*got));
}

TEST_F(StreamTest, CreateRejectsImplicitAllowedSets) {
  DiscoveryProblem implicit = problem_;
  implicit.allowed.clear();  // batch would expand from the sequence
  Result<OnlineMiner> miner =
      OnlineMiner::Create(&toy_, implicit, OnlineMinerOptions{});
  EXPECT_FALSE(miner.ok());
}

TEST_F(StreamTest, CreateRejectsNegativeStreamOptions) {
  OnlineMinerOptions negative_tolerance;
  negative_tolerance.tolerance = -1;
  EXPECT_FALSE(OnlineMiner::Create(&toy_, problem_, negative_tolerance).ok());
  OnlineMinerOptions negative_retention;
  negative_retention.retention = -1;
  EXPECT_FALSE(OnlineMiner::Create(&toy_, problem_, negative_retention).ok());
}

TEST_F(StreamTest, NoReferenceOccurrencesYieldsTheMinimalReport) {
  OnlineMiner miner = MakeStream(OnlineMinerOptions{});
  std::vector<Event> rootless;
  for (const Event& event : events_) {
    if (event.type != problem_.reference_type) rootless.push_back(event);
  }
  for (const Event& event : rootless) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  Result<MiningReport> got = miner.Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(FormatReport(BatchMine(rootless, 1)), FormatReport(*got));
  EXPECT_EQ(got->total_roots, 0u);
  EXPECT_TRUE(got->solutions.empty());
}

// Candidate-space clamping (max_candidates below the space) must stream the
// same partial report the batch clamp produces.
TEST_F(StreamTest, ClampedCandidateSpaceMatchesBatch) {
  OnlineMinerOptions options;
  options.max_candidates = 10;  // < 36
  OnlineMiner miner = MakeStream(options);
  for (const Event& event : events_) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  Result<MiningReport> got = miner.Snapshot();
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->completeness.complete);

  Miner batch(&toy_, options.BatchEquivalent());
  Result<MiningReport> want = batch.Mine(problem_, Canonical(events_));
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(FormatReport(*want), FormatReport(*got));
}

// Resident-state telemetry: deadline passing must retire configurations
// (the mingap-based GC of docs/streaming.md), and eviction must drop roots.
TEST_F(StreamTest, DeadlinesRetireResidentConfigurations) {
  OnlineMiner miner = MakeStream(OnlineMinerOptions{});
  for (const Event& event : events_) {
    ASSERT_TRUE(miner.Ingest(event).ok());
  }
  EXPECT_GT(miner.resident_roots(), 0u);
  std::size_t resident_before = miner.resident_configurations();
  // The structure's windows span at most 16 units past a root; jumping the
  // watermark far beyond every deadline finalizes all pending runs.
  ASSERT_TRUE(miner.Ingest(5, events_.back().time + 1000).ok());
  ASSERT_TRUE(miner.Ingest(5, events_.back().time + 2000).ok());
  EXPECT_LT(miner.resident_configurations(), resident_before);
  EXPECT_EQ(miner.pending_runs(), 0u)
      << "every run should be decided or deadline-finalized";
}

}  // namespace
}  // namespace granmine
