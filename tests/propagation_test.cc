#include "granmine/constraint/propagation.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"
#include "granmine/constraint/exact.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"

namespace granmine {
namespace {

class PropagationTest : public testing::Test {
 protected:
  PropagationTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity* Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return g;
  }
  PropagationResult Run(const EventStructure& s,
                        PropagationOptions options = PropagationOptions{}) {
    ConstraintPropagator propagator(&system_->tables(), &system_->coverage(),
                                    options);
    Result<PropagationResult> result = propagator.Propagate(s);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(PropagationTest, NoConstraintsIsTriviallyConsistent) {
  EventStructure s;
  s.AddVariable("X0");
  s.AddVariable("X1");
  PropagationResult result = Run(s);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.granularities.empty());
}

TEST_F(PropagationTest, SingleGranularityBehavesLikeStp) {
  const Granularity* day = Get("day");
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(1, 2, day)).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(3, 4, day)).ok());
  PropagationResult result = Run(s);
  ASSERT_TRUE(result.consistent);
  EXPECT_EQ(result.GetBounds(day, x0, x2), Bounds::Of(4, 6));
  EXPECT_EQ(result.iterations, 2);  // second pass confirms the fixpoint
}

TEST_F(PropagationTest, DetectsSameGranularityInconsistency) {
  const Granularity* day = Get("day");
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(2, 3, day)).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Of(2, 3, day)).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x2, Tcg::Of(0, 1, day)).ok());
  EXPECT_FALSE(Run(s).consistent);
}

TEST_F(PropagationTest, DetectsCrossGranularityInconsistency) {
  // Same week but at least 10 days apart is impossible.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("week"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(10, 20, Get("day"))).ok());
  EXPECT_FALSE(Run(s).consistent);
}

TEST_F(PropagationTest, CrossGranularityConsistentCase) {
  // Same week and 1..3 days apart is fine.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("week"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(1, 3, Get("day"))).ok());
  PropagationResult result = Run(s);
  ASSERT_TRUE(result.consistent);
  // The week constraint tightens the derived day bounds to <= 6.
  Bounds day_bounds = result.GetBounds(Get("day"), x0, x1);
  EXPECT_EQ(day_bounds, Bounds::Of(1, 3));
}

TEST_F(PropagationTest, DerivesConstraintsAcrossGranularities) {
  // [0,0]week implies a day-distance bound of at most 6.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("week"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 1000, Get("day"))).ok());
  PropagationResult result = Run(s);
  ASSERT_TRUE(result.consistent);
  EXPECT_EQ(result.GetBounds(Get("day"), x0, x1), Bounds::Of(0, 6));
}

TEST_F(PropagationTest, DefinednessClosesOverSupportInclusion) {
  // A b-day constraint implies both endpoints are defined in b-day, hence
  // (support inclusion) in day, week, month, year — but not weekend-day.
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 5, Get("b-day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 40, Get("day"))).ok());
  PropagationResult result = Run(s);
  ASSERT_TRUE(result.consistent);
  EXPECT_TRUE(result.IsDefinedIn(Get("b-day"), x0));
  EXPECT_TRUE(result.IsDefinedIn(Get("day"), x0));
  EXPECT_TRUE(result.IsDefinedIn(Get("day"), x1));
  // 6 consecutive b-days span at most 8 days -> derived day bound 7.
  EXPECT_EQ(result.GetBounds(Get("day"), x0, x1), Bounds::Of(0, 7));
}

TEST_F(PropagationTest, Figure1bIsNotRefuted) {
  // The approximate algorithm must NOT refute Figure 1(b): it is consistent
  // (distance 0 or 12 months both realizable).
  auto structure = BuildFigure1b(*system_);
  ASSERT_TRUE(structure.ok()) << structure.status();
  PropagationResult result = Run(*structure);
  EXPECT_TRUE(result.consistent);
  // X2 - X0 stays within the explicit [0,12] months.
  Bounds months = result.GetBounds(Get("month"), 0, 2);
  EXPECT_GE(months.lo, 0);
  EXPECT_LE(months.hi, 12);
}

TEST_F(PropagationTest, Figure1bContradictionIsBeyondApproximation) {
  // Forcing the month distance into [1,11] makes the structure inconsistent
  // (the true distance is 0 or 12), but only exact checking can see it —
  // this is exactly the incompleteness Theorem 1 predicts.
  auto structure = BuildFigure1b(*system_);
  ASSERT_TRUE(structure.ok()) << structure.status();
  ASSERT_TRUE(structure->AddConstraint(0, 2, Tcg::Of(1, 11, Get("month")))
                  .ok());
  PropagationResult approx = Run(*structure);
  EXPECT_TRUE(approx.consistent);  // not refuted: the algorithm is incomplete

  ExactConsistencyChecker exact(&system_->tables(), &system_->coverage());
  auto exact_result = exact.Check(*structure);
  ASSERT_TRUE(exact_result.ok()) << exact_result.status();
  EXPECT_FALSE(exact_result->consistent);
}

TEST_F(PropagationTest, Figure1aDerivedRootToSinkWindow) {
  // §5.1 reports Γ'(X0, X3) ⊇ {[0,1]week, finite hour bounds} for Figure
  // 1(a). We assert the derived week bounds exactly and the b-day/hour
  // bounds' soundness envelope.
  auto seconds_system = GranularitySystem::Gregorian();
  auto structure = BuildFigure1a(*seconds_system);
  ASSERT_TRUE(structure.ok()) << structure.status();
  ConstraintPropagator propagator(&seconds_system->tables(),
                                  &seconds_system->coverage());
  auto result = propagator.Propagate(*structure);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  const Granularity* week = seconds_system->Find("week");
  const Granularity* hour = seconds_system->Find("hour");
  // The paper's §5.1 quotes Γ'(X0,X3) ∋ [0,1]week, but [0,2] is the correct
  // tight derivation: X0=Fri → X1=Mon crosses one week boundary ([1,1]b-day
  // does not imply same-week), and X1→X3 adds another ([0,1]week). See
  // EXPERIMENTS.md (E7) for the full accounting of the abstract's numbers.
  Bounds week_bounds = result->GetBounds(week, 0, 3);
  EXPECT_EQ(week_bounds, Bounds::Of(0, 2));
  Bounds hour_bounds = result->GetBounds(hour, 0, 3);
  EXPECT_GE(hour_bounds.lo, 0);
  EXPECT_LT(hour_bounds.hi, kInfinity);
  // The paper's extended abstract quotes [1,175]hour; our exact tables give
  // a nearby (sound) interval. Record it for EXPERIMENTS.md.
  RecordProperty("derived_hour_lo", std::to_string(hour_bounds.lo));
  RecordProperty("derived_hour_hi", std::to_string(hour_bounds.hi));
}

TEST_F(PropagationTest, SoundnessAgainstWitnesses) {
  // Property: for random consistent toy structures, any witness found by
  // the exact checker satisfies every derived bound (Theorem 2 soundness).
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  const Granularity* three = toy.AddUniform("three", 3);
  const Granularity* five = toy.AddUniform("five", 5);
  const Granularity* gapped =
      toy.AddSynthetic("gapped", 4, {TimeSpan::Of(0, 2)});
  const Granularity* types[] = {unit, three, five, gapped};
  Rng rng(31337);
  int consistent_count = 0;
  for (int trial = 0; trial < 80; ++trial) {
    EventStructure s;
    const int n = static_cast<int>(rng.Uniform(2, 4));
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    int edges = static_cast<int>(rng.Uniform(1, 4));
    for (int e = 0; e < edges; ++e) {
      int a = static_cast<int>(rng.Uniform(0, n - 2));
      int b = static_cast<int>(rng.Uniform(a + 1, n - 1));
      std::int64_t lo = rng.Uniform(0, 3);
      ASSERT_TRUE(s.AddConstraint(a, b,
                                  Tcg::Of(lo, lo + rng.Uniform(0, 3),
                                          types[rng.Index(4)]))
                      .ok());
    }
    ConstraintPropagator propagator(&toy.tables(), &toy.coverage());
    auto prop = propagator.Propagate(s);
    ASSERT_TRUE(prop.ok()) << prop.status();
    ExactOptions exact_options;
    exact_options.horizon_span = 200;
    ExactConsistencyChecker exact(&toy.tables(), &toy.coverage(),
                                  exact_options);
    auto exact_result = exact.Check(s);
    ASSERT_TRUE(exact_result.ok()) << exact_result.status();
    if (!exact_result->consistent) continue;
    ++consistent_count;
    // Soundness: propagation must not have refuted a consistent structure.
    ASSERT_TRUE(prop->consistent) << s.ToString();
    // And the witness obeys every derived bound.
    const std::vector<TimePoint>& w = exact_result->witness;
    for (const Granularity* g : prop->granularities) {
      for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
          if (a == b) continue;
          std::optional<std::int64_t> diff = TickDifference(*g, w[a], w[b]);
          if (!diff.has_value()) continue;
          Bounds bounds = prop->GetBounds(g, a, b);
          EXPECT_GE(*diff, bounds.lo) << s.ToString();
          EXPECT_LE(*diff, bounds.hi) << s.ToString();
        }
      }
    }
  }
  EXPECT_GT(consistent_count, 10);
}

TEST_F(PropagationTest, RejectsCyclicGraphs) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x0, Tcg::Same(Get("day"))).ok());
  ConstraintPropagator propagator(&system_->tables(), &system_->coverage());
  EXPECT_FALSE(propagator.Propagate(s).ok());
}

}  // namespace
}  // namespace granmine
