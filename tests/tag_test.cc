#include "granmine/tag/tag.h"

#include <gtest/gtest.h>

#include "granmine/granularity/system.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

TEST(ClockConstraintTest, AtomsEvaluate) {
  std::vector<std::optional<std::int64_t>> values = {5, std::nullopt};
  EXPECT_EQ(ClockConstraint::True().Evaluate(values), true);
  EXPECT_EQ(ClockConstraint::AtMost(0, 5).Evaluate(values), true);
  EXPECT_EQ(ClockConstraint::AtMost(0, 4).Evaluate(values), false);
  EXPECT_EQ(ClockConstraint::AtLeast(0, 5).Evaluate(values), true);
  EXPECT_EQ(ClockConstraint::AtLeast(0, 6).Evaluate(values), false);
  // Undefined clocks yield unknown.
  EXPECT_EQ(ClockConstraint::AtMost(1, 100).Evaluate(values), std::nullopt);
}

TEST(ClockConstraintTest, RangeIsConjunction) {
  std::vector<std::optional<std::int64_t>> values = {5};
  EXPECT_EQ(ClockConstraint::Range(0, 0, 10).Evaluate(values), true);
  EXPECT_EQ(ClockConstraint::Range(0, 6, 10).Evaluate(values), false);
  EXPECT_EQ(ClockConstraint::Range(0, 0, 4).Evaluate(values), false);
}

TEST(ClockConstraintTest, KleeneThreeValuedLogic) {
  std::vector<std::optional<std::int64_t>> values = {5, std::nullopt};
  ClockConstraint unknown = ClockConstraint::AtMost(1, 3);
  ClockConstraint yes = ClockConstraint::AtMost(0, 9);
  ClockConstraint no = ClockConstraint::AtLeast(0, 9);
  // false && unknown == false; true && unknown == unknown.
  EXPECT_EQ(ClockConstraint::And(no, unknown).Evaluate(values), false);
  EXPECT_EQ(ClockConstraint::And(yes, unknown).Evaluate(values),
            std::nullopt);
  // true || unknown == true; false || unknown == unknown.
  EXPECT_EQ(ClockConstraint::Or(yes, unknown).Evaluate(values), true);
  EXPECT_EQ(ClockConstraint::Or(no, unknown).Evaluate(values), std::nullopt);
  // !unknown == unknown.
  EXPECT_EQ(ClockConstraint::Not(unknown).Evaluate(values), std::nullopt);
  EXPECT_EQ(ClockConstraint::Not(yes).Evaluate(values), false);
  // IsSatisfied demands definite truth.
  EXPECT_FALSE(ClockConstraint::And(yes, unknown).IsSatisfied(values));
}

TEST(ClockConstraintTest, AndWithTrueSimplifies) {
  ClockConstraint c =
      ClockConstraint::And(ClockConstraint::True(),
                           ClockConstraint::AtMost(0, 3));
  EXPECT_EQ(c.ToString(), "x0 <= 3");
  EXPECT_EQ(ClockConstraint::Range(0, 1, 2).MentionedClocks(),
            (std::vector<int>{0}));
}

TEST(TagContainerTest, BuildValidateRender) {
  auto system = GranularitySystem::GregorianDays();
  Tag tag;
  int s0 = tag.AddState("S0");
  int s1 = tag.AddState("S1");
  int x = tag.AddClock(system->Find("day"), "x_day");
  tag.MarkStart(s0);
  tag.MarkAccepting(s1);
  tag.AddTransition(Tag::Transition{s0, s0, kAnySymbol, {}, {}});
  tag.AddTransition(
      Tag::Transition{s0, s1, 7, {x}, ClockConstraint::Range(x, 0, 3)});
  EXPECT_TRUE(tag.Validate().ok());
  EXPECT_EQ(tag.state_count(), 2);
  EXPECT_TRUE(tag.IsAccepting(s1));
  EXPECT_FALSE(tag.IsAccepting(s0));
  EXPECT_EQ(tag.OutgoingOf(s0).size(), 2u);
  EXPECT_EQ(tag.OutgoingOf(s1).size(), 0u);
  std::string repr = tag.ToString();
  EXPECT_NE(repr.find("x_day"), std::string::npos);
  EXPECT_NE(repr.find("ANY"), std::string::npos);
}

TEST(TagContainerTest, ValidationCatchesBadPieces) {
  auto system = GranularitySystem::GregorianDays();
  Tag no_start;
  no_start.AddState("S0");
  EXPECT_FALSE(no_start.Validate().ok());

  Tag bad_reset;
  int s = bad_reset.AddState("S0");
  bad_reset.MarkStart(s);
  bad_reset.AddTransition(Tag::Transition{s, s, 0, {5}, {}});
  EXPECT_FALSE(bad_reset.Validate().ok());

  Tag bad_guard;
  s = bad_guard.AddState("S0");
  bad_guard.MarkStart(s);
  bad_guard.AddTransition(
      Tag::Transition{s, s, 0, {}, ClockConstraint::AtMost(3, 1)});
  EXPECT_FALSE(bad_guard.Validate().ok());
}

TEST(TagContainerTest, SymbolSubstitution) {
  Tag tag;
  int s0 = tag.AddState("S0");
  int s1 = tag.AddState("S1");
  tag.MarkStart(s0);
  tag.AddTransition(Tag::Transition{s0, s1, 0, {}, {}});
  tag.AddTransition(Tag::Transition{s0, s0, kAnySymbol, {}, {}});
  EXPECT_FALSE(tag.SubstituteSymbols({{5, 7}}).ok());  // symbol 0 unmapped
  ASSERT_TRUE(tag.SubstituteSymbols({{0, 42}}).ok());
  EXPECT_EQ(tag.transitions()[0].symbol, 42);
  EXPECT_EQ(tag.transitions()[1].symbol, kAnySymbol);  // ANY untouched
}

TEST(SymbolMapTest, IdentityAndAssignment) {
  SymbolMap identity = SymbolMap::Identity(3);
  EXPECT_EQ(identity.SymbolsFor(2).size(), 1u);
  EXPECT_EQ(identity.SymbolsFor(2)[0], 2);
  EXPECT_TRUE(identity.SymbolsFor(9).empty());

  // phi: X0 -> type 1, X1 -> type 0, X2 -> type 1.
  SymbolMap by_phi = SymbolMap::FromAssignment({1, 0, 1}, 2);
  ASSERT_EQ(by_phi.SymbolsFor(0).size(), 1u);
  EXPECT_EQ(by_phi.SymbolsFor(0)[0], 1);
  ASSERT_EQ(by_phi.SymbolsFor(1).size(), 2u);
  EXPECT_EQ(by_phi.SymbolsFor(1)[0], 0);
  EXPECT_EQ(by_phi.SymbolsFor(1)[1], 2);
}

}  // namespace
}  // namespace granmine
