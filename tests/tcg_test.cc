#include "granmine/constraint/tcg.h"

#include <gtest/gtest.h>

#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

class TcgTest : public testing::Test {
 protected:
  TcgTest() : system_(GranularitySystem::Gregorian()) {}
  const Granularity* Get(const char* name) {
    const Granularity* g = system_->Find(name);
    EXPECT_NE(g, nullptr) << name;
    return g;
  }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(TcgTest, PaperDayExample) {
  // §3: event e1 at 11pm of one day, e2 at 4am the next day. They do NOT
  // satisfy [0,0]day, but DO satisfy [0,86399]second — showing that TCGs in
  // coarse granularities cannot be translated exactly into seconds.
  TimePoint t1 = 23 * 3600;               // 11pm, day 1
  TimePoint t2 = kSecondsPerDay + 4 * 3600;  // 4am, day 2
  EXPECT_FALSE(Satisfies(Tcg::Same(Get("day")), t1, t2));
  EXPECT_TRUE(Satisfies(Tcg::Of(0, 86399, Get("second")), t1, t2));
  // Same-day pair satisfies both.
  EXPECT_TRUE(Satisfies(Tcg::Same(Get("day")), t1, t1 + 1800));
  EXPECT_TRUE(Satisfies(Tcg::Of(0, 86399, Get("second")), t1, t1 + 1800));
}

TEST_F(TcgTest, HourWindowExample) {
  // §3: e1 and e2 satisfy [0,2]hour iff e2 is in the same second or within
  // two hour-ticks after e1.
  Tcg tcg = Tcg::Of(0, 2, Get("hour"));
  EXPECT_TRUE(Satisfies(tcg, 100, 100));
  EXPECT_TRUE(Satisfies(tcg, 100, 3600 + 100));   // next hour
  EXPECT_TRUE(Satisfies(tcg, 100, 2 * 3600));     // two hours later
  EXPECT_FALSE(Satisfies(tcg, 100, 3 * 3600));    // three hour-ticks apart
  EXPECT_FALSE(Satisfies(tcg, 3600, 100));        // order violated
}

TEST_F(TcgTest, NextMonthExample) {
  // §3: [1,1]month — e2 occurs in the month right after e1's month.
  Tcg tcg = Tcg::Of(1, 1, Get("month"));
  TimePoint jan31 = (DaysFromCivil(1970, 1, 31)) * kSecondsPerDay;
  TimePoint feb1 = (DaysFromCivil(1970, 2, 1)) * kSecondsPerDay;
  TimePoint mar1 = (DaysFromCivil(1970, 3, 1)) * kSecondsPerDay;
  EXPECT_TRUE(Satisfies(tcg, jan31, feb1));
  EXPECT_FALSE(Satisfies(tcg, jan31, mar1));
  EXPECT_FALSE(Satisfies(tcg, jan31, jan31));
}

TEST_F(TcgTest, OrderIsOnTimestampsNotTicks) {
  // t1 <= t2 is required even when the tick difference is fine.
  Tcg tcg = Tcg::Same(Get("day"));
  EXPECT_TRUE(Satisfies(tcg, 100, 200));
  EXPECT_FALSE(Satisfies(tcg, 200, 100));
  EXPECT_TRUE(Satisfies(tcg, 100, 100));
}

TEST_F(TcgTest, UndefinedTicksFailTheConstraint) {
  // A weekend timestamp has no b-day tick, so any b-day TCG is unsatisfied.
  const Granularity* b_day = Get("b-day");
  TimePoint thursday = 0;
  TimePoint saturday = 2 * kSecondsPerDay;
  TimePoint monday = 4 * kSecondsPerDay;
  EXPECT_FALSE(Satisfies(Tcg::Of(0, 5, b_day), thursday, saturday));
  EXPECT_FALSE(Satisfies(Tcg::Of(0, 5, b_day), saturday, monday));
  EXPECT_TRUE(Satisfies(Tcg::Of(0, 5, b_day), thursday, monday));
}

TEST_F(TcgTest, BusinessDayDistanceSkipsWeekends) {
  // Thu -> next Tue is 3 business days even though 5 calendar days passed.
  Tcg three = Tcg::Of(3, 3, Get("b-day"));
  TimePoint thursday = 0;
  TimePoint tuesday = 5 * kSecondsPerDay;
  EXPECT_TRUE(Satisfies(three, thursday, tuesday));
  EXPECT_FALSE(Satisfies(Tcg::Of(5, 5, Get("b-day")), thursday, tuesday));
  EXPECT_TRUE(Satisfies(Tcg::Of(5, 5, Get("day")), thursday, tuesday));
}

TEST_F(TcgTest, ToStringRendering) {
  EXPECT_EQ(Tcg::Of(0, 5, Get("b-day")).ToString(), "[0,5]b-day");
  EXPECT_EQ(Tcg::Same(Get("day")).ToString(), "[0,0]day");
  EXPECT_EQ(Tcg::Of(1, kInfinity, Get("hour")).ToString(), "[1,inf]hour");
}

}  // namespace
}  // namespace granmine
