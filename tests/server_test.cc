// The serving-layer contract suite (docs/serving.md):
//
//  - wire format: the frame layout constants match the spec's table, the
//    incremental parser survives one-byte-at-a-time delivery, and CRC /
//    length corruption is a protocol error naming the stream offset;
//  - loopback differential: server responses are byte-identical to
//    granmine_cli stdout (and exit codes match) for the same requests —
//    mine (plain / --naive / pins / --explain / bad reference), check
//    (consistent, --exact, inconsistent), dot (structure and TAG), and a
//    windowed stream driven frame by frame;
//  - protocol faults: torn frames reassemble, a CRC-flipped frame draws a
//    fatal error reply and a closed connection, an unknown frame type draws
//    a non-fatal kUnsupported reply and the connection keeps serving;
//  - overload: an injected queue-full fault surfaces as a retryable error
//    frame carrying the admission reason and a suggested backoff;
//  - connection robustness: a client hanging up with replies queued does
//    not SIGPIPE the process, pipelining past max_pending_frames stalls
//    reads instead of growing the heap, an outbox past max_outbox_bytes
//    drops the peer, and racing Start() calls admit exactly one winner;
//  - concurrency: four clients soak the same server and every response
//    stays byte-identical to the single-client expectation (run under the
//    `sanitizer` label for the TSAN/ASAN gate).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/engine/admission.h"
#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/server/client.h"
#include "granmine/server/server.h"
#include "granmine/server/wire.h"

namespace granmine {
namespace {

using server::Client;
using server::Frame;
using server::FrameParser;
using server::FrameType;
using server::Response;
using server::Server;
using server::ServerOptions;

// The demo corpus granmine_cli writes for its own quickstart — every
// differential below runs both sides over these bytes.
constexpr char kStructure[] =
    "rise -> report : [1,1] b-day\n"
    "report -> fall : [0,1] week\n"
    "rise -> hp     : [0,5] b-day\n"
    "hp -> fall     : [0,8] hour\n";

constexpr char kEvents[] =
    "1970-01-05 10:00:00 IBM-rise\n"
    "1970-01-06 11:00:00 IBM-earnings-report\n"
    "1970-01-07 12:00:00 HP-rise\n"
    "1970-01-07 15:00:00 IBM-fall\n"
    "1970-01-12 10:00:00 IBM-rise\n"
    "1970-01-13 11:00:00 IBM-earnings-report\n"
    "1970-01-14 12:00:00 HP-rise\n"
    "1970-01-14 15:00:00 IBM-fall\n"
    "1970-01-19 10:00:00 IBM-rise\n";

// A structure propagation refutes: the a->c path through b takes two weeks
// but the direct edge allows at most a day.
constexpr char kInconsistent[] =
    "a -> b : [1,1] week\n"
    "b -> c : [1,1] week\n"
    "a -> c : [0,1] day\n";

std::string TempPath(const char* name) {
  return testing::TempDir() + "granmine_server_" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

struct CliRun {
  std::string out;
  int exit_code = -1;
};

// Runs the real granmine_cli binary, capturing stdout; stderr (stats,
// diagnostics) is discarded — the differential is the stdout contract.
CliRun RunCli(const std::string& args) {
  CliRun run;
  const std::string command =
      std::string(GRANMINE_CLI_BINARY) + " " + args + " 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.out.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

// One engine + server per fixture; tests connect as many clients as they
// need. The engine freezes at Start, like production.
class ServerTest : public testing::Test {
 protected:
  void StartServer(EngineOptions engine_options = {},
                   ServerOptions server_options = {}) {
    auto engine = Engine::CreateGregorian(engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    srv_ = std::make_unique<Server>(engine_.get(), server_options);
    Status started = srv_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", srv_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  void TearDown() override {
    if (srv_ != nullptr) srv_->Stop();
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Server> srv_;
};

// --- Wire format ---------------------------------------------------------

// The layout constants pinned here are normative in docs/serving.md
// ("Frame layout"): 8-byte magic + u32 version preamble, then per frame
// u32 type | u32 flags | u64 corr | u64 len | u32 crc = 28 header bytes.
TEST(WireFormat, FrameLayoutMatchesSpec) {
  EXPECT_EQ(server::kMagicSize, 8u);
  EXPECT_EQ(server::kPreambleSize, 12u);
  EXPECT_EQ(server::kFrameHeaderSize, 28u);
  EXPECT_EQ(std::memcmp(server::kWireMagic, "GMRPC01\0", 8), 0);

  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  AppendFrame(&bytes, FrameType::kPing, /*corr_id=*/0x1122334455667788ull,
              payload);
  ASSERT_EQ(bytes.size(), server::kFrameHeaderSize + payload.size());
  // u32 type, little-endian, at offset 0.
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(FrameType::kPing));
  EXPECT_EQ(bytes[1], 0u);
  // u32 flags at offset 4 — zero on the wire today.
  EXPECT_EQ(bytes[4], 0u);
  // u64 correlation id at offset 8.
  EXPECT_EQ(bytes[8], 0x88u);
  EXPECT_EQ(bytes[15], 0x11u);
  // u64 payload length at offset 16.
  EXPECT_EQ(bytes[16], payload.size());
  EXPECT_EQ(bytes[23], 0u);
  // Payload follows the 28-byte header.
  EXPECT_EQ(bytes[28], 0xAA);

  FrameParser parser;
  parser.Feed(bytes);
  auto frame = parser.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kPing);
  EXPECT_EQ((*frame)->corr_id, 0x1122334455667788ull);
  EXPECT_EQ((*frame)->payload, payload);
}

TEST(WireFormat, ParserSurvivesByteAtATimeDelivery) {
  server::CheckCall call;
  call.structure_text = kStructure;
  call.exact = true;
  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kCheck, 7, EncodeCheckCall(call));
  AppendFrame(&bytes, FrameType::kPing, 8, {});

  FrameParser parser;
  std::vector<Frame> frames;
  for (std::uint8_t b : bytes) {
    parser.Feed(std::span<const std::uint8_t>(&b, 1));
    while (true) {
      auto next = parser.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kCheck);
  EXPECT_EQ(frames[0].corr_id, 7u);
  server::CheckCall decoded;
  ASSERT_TRUE(DecodeCheckCall(frames[0].payload, &decoded).ok());
  EXPECT_EQ(decoded.structure_text, call.structure_text);
  EXPECT_TRUE(decoded.exact);
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_EQ(parser.consumed(), bytes.size());
}

TEST(WireFormat, CrcFlipIsAProtocolErrorWithAnOffset) {
  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kPing, 1, {{1, 2, 3, 4}});
  bytes.back() ^= 0x01;  // corrupt the payload under an already-stamped CRC
  FrameParser parser;
  parser.Feed(bytes);
  auto frame = parser.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("CRC mismatch"), std::string::npos)
      << frame.status().ToString();
  EXPECT_NE(frame.status().message().find("offset 0"), std::string::npos);
}

TEST(WireFormat, OversizedLengthIsAProtocolErrorNotAnAllocation) {
  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kPing, 1, {});
  // Rewrite the length field to something absurd; the parser must reject on
  // the header alone, before any CRC or payload wait.
  bytes[16] = 0xFF;
  bytes[22] = 0xFF;
  FrameParser parser;
  parser.Feed(bytes);
  auto frame = parser.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("payload length"),
            std::string::npos)
      << frame.status().ToString();
}

// --- Loopback differential ----------------------------------------------

class ServerDifferentialTest : public ServerTest {
 protected:
  void SetUp() override {
    structure_path_ = TempPath("structure.txt");
    events_path_ = TempPath("events.txt");
    inconsistent_path_ = TempPath("inconsistent.txt");
    WriteFile(structure_path_, kStructure);
    WriteFile(events_path_, kEvents);
    WriteFile(inconsistent_path_, kInconsistent);
    StartServer();
  }

  // Asserts one served response against one CLI invocation: same stdout
  // bytes, same exit code.
  void ExpectMatchesCli(const Response& response, const std::string& cli_args) {
    ASSERT_NE(response.type, FrameType::kErrorReply)
        << response.error.message;
    const CliRun cli = RunCli(cli_args);
    ASSERT_GE(cli.exit_code, 0) << "could not run " GRANMINE_CLI_BINARY;
    EXPECT_EQ(response.out, cli.out) << "for: " << cli_args;
    EXPECT_EQ(response.exit_code, cli.exit_code) << "for: " << cli_args;
  }

  server::MineCall DemoMine() {
    server::MineCall call;
    call.structure_text = kStructure;
    call.events_text = kEvents;
    call.reference = "IBM-rise";
    call.confidence = "0.5";
    return call;
  }

  std::string MineArgs(const std::string& extra = "") {
    return "mine --structure " + structure_path_ + " --events " +
           events_path_ + " --reference IBM-rise --confidence 0.5" + extra;
  }

  std::string structure_path_;
  std::string events_path_;
  std::string inconsistent_path_;
};

TEST_F(ServerDifferentialTest, MineMatchesCliByteForByte) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  auto plain = client->Mine(DemoMine());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ExpectMatchesCli(*plain, MineArgs());
  EXPECT_FALSE(plain->out.empty());

  auto naive_call = DemoMine();
  naive_call.naive = true;
  auto naive = client->Mine(naive_call);
  ASSERT_TRUE(naive.ok());
  ExpectMatchesCli(*naive, MineArgs(" --naive"));
  // The optimized and naive pipelines must agree on the solution set — the
  // paper's differential — so the two replies share their solution lines.
  EXPECT_EQ(plain->out.substr(plain->out.find("solution(s)")),
            naive->out.substr(naive->out.find("solution(s)")));

  auto pinned_call = DemoMine();
  pinned_call.pins = {"report=IBM-earnings-report", "fall=IBM-fall"};
  auto pinned = client->Mine(pinned_call);
  ASSERT_TRUE(pinned.ok());
  ExpectMatchesCli(*pinned,
                   MineArgs(" --pin report=IBM-earnings-report"
                            " --pin fall=IBM-fall"));

  auto explain_call = DemoMine();
  explain_call.explain = true;
  auto explained = client->Mine(explain_call);
  ASSERT_TRUE(explained.ok());
  ExpectMatchesCli(*explained, MineArgs(" --explain"));
}

TEST_F(ServerDifferentialTest, MineErrorsCarryTheCliDiagnostics) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto call = DemoMine();
  call.reference = "NO-SUCH-TYPE";
  auto response = client->Mine(call);
  ASSERT_TRUE(response.ok());
  const CliRun cli = RunCli(
      "mine --structure " + structure_path_ + " --events " + events_path_ +
      " --reference NO-SUCH-TYPE --confidence 0.5");
  EXPECT_EQ(response->exit_code, 65);
  EXPECT_EQ(response->exit_code, cli.exit_code);
  EXPECT_EQ(response->out, cli.out);
  EXPECT_NE(response->err.find("reference type 'NO-SUCH-TYPE' does not occur"),
            std::string::npos)
      << response->err;
}

TEST_F(ServerDifferentialTest, CheckAndDotMatchCli) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  server::CheckCall check;
  check.structure_text = kStructure;
  auto approx = client->Check(check);
  ASSERT_TRUE(approx.ok());
  ExpectMatchesCli(*approx, "check --structure " + structure_path_);

  check.exact = true;
  auto exact = client->Check(check);
  ASSERT_TRUE(exact.ok());
  ExpectMatchesCli(*exact, "check --structure " + structure_path_ + " --exact");
  EXPECT_NE(exact->out.find("CONSISTENT (exact witness found"),
            std::string::npos);

  server::CheckCall bad;
  bad.structure_text = kInconsistent;
  auto refuted = client->Check(bad);
  ASSERT_TRUE(refuted.ok());
  ExpectMatchesCli(*refuted, "check --structure " + inconsistent_path_);
  EXPECT_EQ(refuted->exit_code, 1);

  server::DotCall dot;
  dot.structure_text = kStructure;
  auto graph = client->Dot(dot);
  ASSERT_TRUE(graph.ok());
  ExpectMatchesCli(*graph, "dot --structure " + structure_path_);

  dot.tag = true;
  auto tag = client->Dot(dot);
  ASSERT_TRUE(tag.ok());
  ExpectMatchesCli(*tag, "dot --structure " + structure_path_ + " --tag");
}

TEST_F(ServerDifferentialTest, StreamFramesMatchTheCliLoop) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  server::StreamOpenCall open;
  open.structure_text = kStructure;
  open.reference = "IBM-rise";
  open.window = "1209600";
  open.slide = "604800";
  open.pins = {"report=IBM-earnings-report", "hp=HP-rise", "fall=IBM-fall"};
  auto opened = client->StreamOpen(open);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened->exit_code, 0) << opened->err;

  // Feed the demo events one line per frame; every ack's counters and
  // snapshot bytes are deterministic commits.
  std::string served_out = opened->out;
  std::uint64_t accepted = 0;
  std::istringstream events(kEvents);
  std::string line;
  while (std::getline(events, line)) {
    auto ack = client->StreamIngest(line + "\n");
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_EQ(ack->type, FrameType::kStreamAck);
    ASSERT_EQ(ack->exit_code, 0) << ack->err;
    served_out += ack->out;
    accepted += ack->accepted;
  }
  EXPECT_EQ(accepted, 9u);

  auto sealed = client->StreamSeal();
  ASSERT_TRUE(sealed.ok());
  ASSERT_EQ(sealed->type, FrameType::kStreamAck);
  ASSERT_EQ(sealed->exit_code, 0) << sealed->err;
  // The seal ack reports session totals, not per-frame deltas.
  EXPECT_EQ(sealed->accepted, 9u);
  EXPECT_EQ(sealed->rejected_late, 0u);
  served_out += sealed->out;

  const CliRun cli = RunCli(
      "stream --structure " + structure_path_ + " --events " + events_path_ +
      " --reference IBM-rise --window 1209600 --slide 604800"
      " --pin report=IBM-earnings-report --pin hp=HP-rise"
      " --pin fall=IBM-fall");
  ASSERT_EQ(cli.exit_code, 0);
  EXPECT_EQ(served_out, cli.out);
}

// --- Protocol faults -----------------------------------------------------

TEST_F(ServerDifferentialTest, TornFramesReassemble) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  server::CheckCall call;
  call.structure_text = kStructure;
  const Response expected = [&] {
    auto whole = client->Check(call);
    EXPECT_TRUE(whole.ok());
    return *whole;
  }();

  // The same request delivered one byte per write — the worst-case framing
  // the parser promises to survive (docs/serving.md, "Framing").
  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kCheck, 99, EncodeCheckCall(call));
  for (std::uint8_t b : bytes) {
    ASSERT_TRUE(
        client->SendBytes(std::span<const std::uint8_t>(&b, 1)).ok());
  }
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->corr_id, 99u);
  server::ReplyBody reply;
  ASSERT_TRUE(DecodeReply(frame->payload, &reply).ok());
  EXPECT_EQ(reply.out, expected.out);
  EXPECT_EQ(reply.exit_code, expected.exit_code);
}

TEST_F(ServerDifferentialTest, CorruptedFrameIsFatal) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, FrameType::kPing, 5, {{9, 9, 9}});
  bytes.back() ^= 0x40;
  ASSERT_TRUE(client->SendBytes(bytes).ok());

  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, FrameType::kErrorReply);
  server::ErrorBody error;
  ASSERT_TRUE(DecodeError(frame->payload, &error).ok());
  EXPECT_TRUE(error.fatal);
  EXPECT_FALSE(error.retryable);
  EXPECT_NE(error.message.find("CRC mismatch"), std::string::npos)
      << error.message;
  // The stream offset is unrecoverable: the server closes the connection.
  auto eof = client->ReadFrame();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServerDifferentialTest, UnknownFrameTypeIsSkippedNotFatal) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  auto response = client->Call(static_cast<FrameType>(999), {});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->type, FrameType::kErrorReply);
  EXPECT_FALSE(response->error.fatal);
  EXPECT_EQ(response->error.status_code,
            static_cast<std::uint32_t>(StatusCode::kUnsupported));
  // Forward compatibility: the connection keeps serving after skipping the
  // unknown frame.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerDifferentialTest, StatuszFrameRendersTheEngineStatus) {
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto response = client->Statusz();
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response->type, FrameType::kErrorReply);
  EXPECT_EQ(response->exit_code, 0);
  ASSERT_FALSE(response->out.empty());
  EXPECT_EQ(response->out.front(), '{');
  EXPECT_EQ(response->out.back(), '\n');
  EXPECT_NE(response->out.find("\"granularities\""), std::string::npos)
      << response->out;
}

// --- Overload ------------------------------------------------------------

TEST_F(ServerTest, AdmissionShedBecomesARetryableErrorFrame) {
  EngineOptions options;
  options.admission.enabled = true;
  StartServer(options);
  // Trip every admission check from the first arrival on: each request is
  // shed as an injected queue-full fault, deterministically.
  FaultInjector injector(GovernorScope::kGeneral, /*trip_index=*/0,
                         /*cancel_globally=*/false, FaultKind::kQueueFull);
  engine_->admission()->InstallFaultInjector(&injector);

  auto client = Connect();
  ASSERT_NE(client, nullptr);
  server::MineCall call;
  call.structure_text = kStructure;
  call.events_text = kEvents;
  call.reference = "IBM-rise";
  auto response = client->Mine(call);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->type, FrameType::kErrorReply);
  EXPECT_TRUE(response->error.retryable);
  EXPECT_FALSE(response->error.fatal);
  EXPECT_GE(response->error.backoff_ms, 1u);
  EXPECT_EQ(response->error.status_code,
            static_cast<std::uint32_t>(StatusCode::kResourceExhausted));
  EXPECT_NE(response->error.message.find("admission"), std::string::npos)
      << response->error.message;
  // A shed is not fatal: the connection still answers once the fault lifts.
  engine_->admission()->InstallFaultInjector(nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

// --- Connection robustness -----------------------------------------------

// A client that disconnects with a reply still in flight must not kill
// the server. The crash shape: the peer stops reading mid-reply so the
// flush stalls with POLLOUT armed, then aborts (RST); the next poll
// reports POLLIN and POLLOUT together, the loop's read consumes the
// pending socket error, and the flush right after it writes to a
// clean-but-dead socket — which, without MSG_NOSIGNAL, raises SIGPIPE and
// terminates the whole process (this test included) under the default
// disposition.
TEST_F(ServerTest, ClientVanishingMidResponseDoesNotKillTheServer) {
  StartServer();
  // A dot request over a 40k-edge chain of long-named events: the ~10 MB
  // DOT reply overruns even a fully autotuned kernel send buffer
  // (tcp_wmem maxes out at a few MB), so the flush is guaranteed to stall
  // mid-reply with POLLOUT armed once we stop reading.
  server::DotCall call;
  call.structure_text.reserve(10u << 20);
  const std::string pad(96, 'x');
  for (int i = 0; i < 40000; ++i) {
    call.structure_text += "e" + std::to_string(i) + pad + " -> e" +
                           std::to_string(i + 1) + pad + " : [1,1] hour\n";
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A minimal receive window (set before connect), so the server can push
  // only a few KB of the reply into the kernel before its flush stalls.
  int tiny = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv_->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::uint8_t> bytes;
  server::AppendPreamble(&bytes);
  AppendFrame(&bytes, FrameType::kDot, 1, EncodeDotCall(call));
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
  // Read just past the server's 12-byte preamble: one byte of the reply
  // proves the flush has started — with megabytes still queued behind our
  // tiny window — then never read again.
  std::uint8_t sliver[server::kPreambleSize + 1];
  std::size_t got = 0;
  while (got < sizeof(sliver)) {
    const ssize_t n = ::recv(fd, sliver + got, sizeof(sliver) - got, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    got += static_cast<std::size_t>(n);
  }
  // Abort the connection: SO_LINGER{on, 0} turns close() into an
  // immediate RST while the server's outbox is still megabytes deep.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  linger hard{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);
  // Give the loop a beat to take the POLLIN|POLLOUT wakeup: read the RST,
  // then flush into the dead socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  // The server survived the aborted connection and keeps serving.
  auto alive = Connect();
  ASSERT_NE(alive, nullptr);
  EXPECT_TRUE(alive->Ping().ok());
}

// Pipelining far past the per-connection cap must not lose or reorder
// frames: the loop stops reading the socket at max_pending_frames (plain
// TCP backpressure) and resumes as workers drain the queue, so every
// request is still answered, in order.
TEST_F(ServerTest, PipeliningBeyondThePendingCapStallsAndResumes) {
  ServerOptions tight;
  tight.max_pending_frames = 2;
  StartServer({}, tight);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  constexpr std::uint64_t kRequests = 24;
  std::vector<std::uint8_t> burst;
  for (std::uint64_t corr = 1; corr <= kRequests; ++corr) {
    AppendFrame(&burst, FrameType::kStatusz, corr, {});
  }
  ASSERT_TRUE(client->SendBytes(burst).ok());
  for (std::uint64_t corr = 1; corr <= kRequests; ++corr) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kReply);
    EXPECT_EQ(frame->corr_id, corr);
  }
}

// A peer whose buffered replies cross max_outbox_bytes is disconnected
// instead of growing the heap. The cap here is smaller than one statusz
// reply, so the overflow trips deterministically at enqueue time; bytes
// already staged may still flush, but the connection must not survive.
TEST_F(ServerTest, OutboxOverflowDisconnectsInsteadOfBuffering) {
  ServerOptions tight;
  tight.max_outbox_bytes = 64;
  StartServer({}, tight);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  std::vector<std::uint8_t> request;
  AppendFrame(&request, FrameType::kStatusz, 1, {});
  ASSERT_TRUE(client->SendBytes(request).ok());
  auto first = client->ReadFrame();
  if (first.ok()) {
    EXPECT_FALSE(client->ReadFrame().ok());
  }
}

// Start() claims the server under one critical section: racing Start()
// calls admit exactly one winner (no double-built sockets or thread
// pools), and the winner leaves a fully serving server behind.
TEST(ServerLifecycle, ConcurrentStartsAdmitExactlyOne) {
  auto engine = Engine::CreateGregorian({});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Server server(engine->get(), ServerOptions{});
  std::atomic<int> started{0};
  std::vector<std::thread> racers;
  racers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    racers.emplace_back([&] {
      if (server.Start().ok()) started.fetch_add(1);
    });
  }
  for (std::thread& racer : racers) racer.join();
  EXPECT_EQ(started.load(), 1);
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
  server.Stop();
}

// --- Concurrency ---------------------------------------------------------

TEST_F(ServerDifferentialTest, FourClientsSoakWithIdenticalResponses) {
  auto reference_client = Connect();
  ASSERT_NE(reference_client, nullptr);
  const auto mine_call = DemoMine();
  server::CheckCall check_call;
  check_call.structure_text = kStructure;
  server::DotCall dot_call;
  dot_call.structure_text = kStructure;
  dot_call.tag = true;

  const Response expected_mine = *reference_client->Mine(mine_call);
  const Response expected_check = *reference_client->Check(check_call);
  const Response expected_dot = *reference_client->Dot(dot_call);
  ASSERT_FALSE(expected_mine.out.empty());

  constexpr int kThreads = 4;
  constexpr int kIterations = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", srv_->port());
      if (!client.ok()) {
        mismatches.fetch_add(100);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        auto mine = (*client)->Mine(mine_call);
        auto check = (*client)->Check(check_call);
        auto dot = (*client)->Dot(dot_call);
        if (!mine.ok() || mine->out != expected_mine.out ||
            mine->exit_code != expected_mine.exit_code) {
          mismatches.fetch_add(1);
        }
        if (!check.ok() || check->out != expected_check.out) {
          mismatches.fetch_add(1);
        }
        if (!dot.ok() || dot->out != expected_dot.out) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(srv_->connections_accepted(), 5u);
  EXPECT_GE(srv_->frames_dispatched(),
            static_cast<std::uint64_t>(kThreads * kIterations * 3));
  EXPECT_EQ(srv_->frame_errors(), 0u);
}

}  // namespace
}  // namespace granmine
