// Request-scoped observability (docs/observability.md): the structured
// event log's line format and per-site rate limiting, the flight recorder's
// tap-before-filter contract and dump-on-trip wiring, trace-context
// propagation (request ids + parent/child span ids), the statusz JSON
// renderer, and — the contract everything above must not break — mining
// reports that are byte-equivalent with logging on or off at 1 and 4
// threads. Runs under TSAN/ASAN via the ctest "sanitizer" label; the
// EventLog / FlightRecorder / RequestScope classes compile in every
// configuration, so all of this also runs in a GRANMINE_OBS=OFF build
// (only the GM_* macro call sites are compiled out there).

#include "granmine/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/engine/engine.h"
#include "granmine/obs/context.h"
#include "granmine/obs/flight_recorder.h"
#include "granmine/obs/log.h"
#include "granmine/obs/metrics.h"
#include "granmine/obs/trace.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

using obs::EventLog;
using obs::FlightRecorder;
using obs::LogLevel;
using obs::RequestScope;
using obs::TraceCollector;
using obs::TraceSpan;

// Every test drives the process-global logger/collector; start clean and
// leave everything disabled so later tests see no stray cost.
class ObsRequestTest : public testing::Test {
 protected:
  void SetUp() override {
    EventLog::Global().ResetForTest();
    TraceCollector::Global().set_enabled(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    EventLog::Global().ResetForTest();
    TraceCollector::Global().set_enabled(false);
    TraceCollector::Global().Clear();
  }
};

// ---------------------------------------------------------------------------
// Structured event log

TEST_F(ObsRequestTest, RenderLogLineGolden) {
  const std::string line = obs::RenderLogLine(
      1234, LogLevel::kWarn, "governor", 3, "governor stop",
      {{"cause", "deadline"}, {"note", "a\"b\\c\nd"}});
  EXPECT_EQ(line,
            "{\"ts_us\":1234,\"severity\":\"warn\",\"component\":\"governor\","
            "\"request_id\":3,\"message\":\"governor stop\","
            "\"fields\":{\"cause\":\"deadline\",\"note\":\"a\\\"b\\\\c\\nd\"}}");
}

TEST_F(ObsRequestTest, RenderLogLineOmitsEmptyFieldsObject) {
  EXPECT_EQ(obs::RenderLogLine(0, LogLevel::kInfo, "cli", 0, "hello", {}),
            "{\"ts_us\":0,\"severity\":\"info\",\"component\":\"cli\","
            "\"request_id\":0,\"message\":\"hello\"}");
}

TEST_F(ObsRequestTest, MinLevelFiltersTheSinkOnly) {
  EventLog& log = EventLog::Global();
  std::string capture;
  log.CaptureForTest(&capture);
  log.set_min_level(LogLevel::kWarn);
  log.Log(nullptr, LogLevel::kInfo, "test", "below the bar", {});
  log.Log(nullptr, LogLevel::kWarn, "test", "at the bar", {});
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(capture.find("below the bar"), std::string::npos);
  EXPECT_NE(capture.find("at the bar"), std::string::npos);
  log.CaptureForTest(nullptr);
}

TEST_F(ObsRequestTest, PerSiteTokenBucketSuppressesAndCounts) {
  EventLog& log = EventLog::Global();
  std::string capture;
  log.CaptureForTest(&capture);
  // A burst of 2 that never refills: the third and later lines from this
  // site must be suppressed (counted, never silently dropped).
  log.set_rate_limit(/*per_sec=*/0.0, /*burst=*/2.0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.set_enabled(true);
  const obs::MetricsSnapshot snapshot_before = registry.Snapshot();
  const obs::MetricValue* before =
      snapshot_before.Find("granmine_log_suppressed_total");
  const std::uint64_t suppressed_before = before ? before->value : 0;
  obs::LogSite site;
  for (int i = 0; i < 5; ++i) {
    log.Log(&site, LogLevel::kWarn, "test", "looping warn", {});
  }
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.suppressed(), 3u);
  EXPECT_EQ(site.suppressed, 3u);
  // Suppression is observable in the metrics export, not just on the logger
  // (same contract as granmine_trace_dropped_total for span overflow).
  const obs::MetricsSnapshot snapshot_after = registry.Snapshot();
  const obs::MetricValue* after =
      snapshot_after.Find("granmine_log_suppressed_total");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->value, suppressed_before + 3u);
  // A different call site owns a fresh bucket.
  obs::LogSite other;
  log.Log(&other, LogLevel::kWarn, "test", "other site", {});
  EXPECT_EQ(log.emitted(), 3u);
  log.CaptureForTest(nullptr);
}

TEST_F(ObsRequestTest, LogLinesCarryTheCurrentRequestScope) {
  EventLog& log = EventLog::Global();
  std::string capture;
  log.CaptureForTest(&capture);
  {
    RequestScope outer(7);
    log.Log(nullptr, LogLevel::kInfo, "test", "outer", {});
    {
      RequestScope inner(8);  // nests: inner id wins, then restores
      log.Log(nullptr, LogLevel::kInfo, "test", "inner", {});
    }
    log.Log(nullptr, LogLevel::kInfo, "test", "outer again", {});
  }
  log.Log(nullptr, LogLevel::kInfo, "test", "no scope", {});
  EXPECT_NE(capture.find("\"request_id\":7,\"message\":\"outer\""),
            std::string::npos);
  EXPECT_NE(capture.find("\"request_id\":8,\"message\":\"inner\""),
            std::string::npos);
  EXPECT_NE(capture.find("\"request_id\":7,\"message\":\"outer again\""),
            std::string::npos);
  EXPECT_NE(capture.find("\"request_id\":0,\"message\":\"no scope\""),
            std::string::npos);
  log.CaptureForTest(nullptr);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST_F(ObsRequestTest, RecorderSeesAllSeveritiesWithoutASink) {
  EventLog& log = EventLog::Global();
  FlightRecorder recorder(/*capacity=*/8);
  log.AttachRecorder(&recorder);
  // Not enabled: no sink, nothing emitted — but the recorder still taps the
  // stream, below the min level and all.
  log.set_min_level(LogLevel::kError);
  log.Log(nullptr, LogLevel::kDebug, "test", "debug chatter", {});
  log.Log(nullptr, LogLevel::kError, "test", "the failure", {});
  EXPECT_EQ(log.emitted(), 0u);
  ASSERT_EQ(recorder.size(), 2u);
  const std::vector<FlightRecorder::Entry> entries = recorder.Entries();
  EXPECT_NE(entries[0].json.find("debug chatter"), std::string::npos);
  EXPECT_EQ(entries[1].level, LogLevel::kError);
  log.DetachRecorder(&recorder);
  log.Log(nullptr, LogLevel::kError, "test", "after detach", {});
  EXPECT_EQ(recorder.size(), 2u);
}

TEST_F(ObsRequestTest, RecorderRingRetiresOldestAndDumpCountsDropped) {
  FlightRecorder recorder(/*capacity=*/4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    recorder.Append(FlightRecorder::Entry{
        i, LogLevel::kInfo, "{\"n\":" + std::to_string(i) + "}"});
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_appended(), 6u);
  const std::vector<FlightRecorder::Entry> entries = recorder.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().json, "{\"n\":3}");  // oldest retained
  EXPECT_EQ(entries.back().json, "{\"n\":6}");

  const std::string dump =
      recorder.RenderDumpJson("governor-trip", "deadline", 42);
  EXPECT_NE(dump.find("\"component\":\"flight_recorder\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"governor-trip\""), std::string::npos);
  EXPECT_NE(dump.find("\"stop_cause\":\"deadline\""), std::string::npos);
  EXPECT_NE(dump.find("\"request_id\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(dump.find("{\"n\":3}"), std::string::npos);
  EXPECT_EQ(dump.find("{\"n\":2}"), std::string::npos);
}

// The end-to-end trip: an injected fault stops a governed mine, and the
// engine dumps its flight recorder into the log sink with the minted
// request id and the stop cause — the post-mortem needs no re-run.
TEST_F(ObsRequestTest, EngineDumpsFlightRecorderOnGovernorTrip) {
  EventLog& log = EventLog::Global();
  std::string capture;
  log.CaptureForTest(&capture);

  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  StockWorkloadOptions workload_options;
  workload_options.trading_days = 25;
  workload_options.seed = 31;
  Workload workload =
      MakeStockWorkload(*(*engine)->system(), workload_options);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");

  GovernorLimits limits;
  limits.check_stride = 1;  // every charge hits the slow path / the injector
  ResourceGovernor governor(limits);
  // cancel_globally raises the governor's sticky stop flag — the signal the
  // engine's dump-on-trip hook watches (a local-only injected failure never
  // reaches the governor, by design).
  FaultInjector injector(GovernorScope::kMine, /*trip_index=*/0,
                         /*cancel_globally=*/true);
  governor.InstallFaultInjector(&injector);

  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  request.governor = &governor;
  request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  auto response = (*engine)->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->report.completeness.complete);
  EXPECT_EQ(response->report.completeness.stop, StopCause::kFaultInjected);

  EXPECT_NE(capture.find("\"component\":\"flight_recorder\""),
            std::string::npos)
      << capture;
  EXPECT_NE(capture.find("\"reason\":\"governor-trip\""), std::string::npos);
  EXPECT_NE(capture.find("\"stop_cause\":\"fault-injected\""),
            std::string::npos);
  // The engine's first request mints id 1, and the dump names it.
  EXPECT_NE(capture.find("\"request_id\":1,\"reason\""), std::string::npos);
  log.CaptureForTest(nullptr);
}

// ---------------------------------------------------------------------------
// Trace-context propagation

TEST_F(ObsRequestTest, SpansCarryRequestIdAndParentChain) {
  TraceCollector& collector = TraceCollector::Global();
  collector.set_enabled(true);
  {
    RequestScope scope(9);
    TraceSpan outer("obs_req_outer");
    { TraceSpan inner("obs_req_inner"); }
  }
  const std::vector<TraceCollector::Event> events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceCollector::Event* outer = nullptr;
  const TraceCollector::Event* inner = nullptr;
  for (const TraceCollector::Event& event : events) {
    if (std::string(event.name) == "obs_req_outer") outer = &event;
    if (std::string(event.name) == "obs_req_inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->request_id, 9u);
  EXPECT_EQ(inner->request_id, 9u);
  EXPECT_EQ(outer->parent_id, 0u);           // root of the request tree
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
}

#if GRANMINE_OBS_ENABLED

// Driving a real request through the facade: every span the engine and the
// miner emit — including the ones recorded on executor pool threads — must
// carry the request id the engine minted.
TEST_F(ObsRequestTest, EngineMineSpansAllCarryTheMintedRequestId) {
  TraceCollector& collector = TraceCollector::Global();
  EngineOptions options;
  options.num_threads = 4;
  options.enable_tracing = true;
  auto engine = Engine::CreateGregorian(options);
  ASSERT_TRUE(engine.ok());
  StockWorkloadOptions workload_options;
  workload_options.trading_days = 25;
  workload_options.seed = 77;
  Workload workload =
      MakeStockWorkload(*(*engine)->system(), workload_options);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  ASSERT_TRUE((*engine)->Mine(request).ok());

  const std::vector<TraceCollector::Event> events = collector.Events();
  ASSERT_FALSE(events.empty());
  bool saw_engine_mine = false;
  bool saw_scan = false;
  for (const TraceCollector::Event& event : events) {
    EXPECT_EQ(event.request_id, 1u) << event.name;
    if (std::string(event.name) == "engine_mine") saw_engine_mine = true;
    if (std::string(event.name) == "scan_chunk" ||
        std::string(event.name) == "scan_driver") {
      saw_scan = true;
    }
  }
  EXPECT_TRUE(saw_engine_mine);
  EXPECT_TRUE(saw_scan);  // pool workers re-install the scope
}

#endif  // GRANMINE_OBS_ENABLED

// ---------------------------------------------------------------------------
// Statusz

TEST_F(ObsRequestTest, StatuszJsonGolden) {
  EngineStatusz statusz;
  statusz.requests_total = 7;
  statusz.frozen = true;
  statusz.granularities = 12;
  statusz.num_threads = 4;
  statusz.admission.enabled = true;
  statusz.admission.queue_depth = 1;
  statusz.admission.max_queue = 16;
  statusz.admission.admitted = 6;
  statusz.admission.shed = 2;
  statusz.admission.degraded = 1;
  statusz.admission.first_shed_cause = "saturated";
  statusz.admission.classes.push_back({"mine", 1, 1, 12.5});
  StatuszRequest governed;
  governed.id = 5;
  governed.cls = "mine";
  governed.elapsed_ms = 3.0;
  governed.governed = true;
  governed.deadline_remaining_ms = 47;
  governed.steps_charged = 128;
  governed.steps_budget = 4096;
  governed.memory_bytes = 2048;
  governed.memory_budget_bytes = 0;
  statusz.in_flight.push_back(governed);
  StatuszRequest ungoverned;
  ungoverned.id = 6;
  ungoverned.cls = "stream";
  ungoverned.elapsed_ms = 0.4;
  statusz.in_flight.push_back(ungoverned);
  statusz.metric_series = 3;
  statusz.trace_spans = 9;
  statusz.log_emitted = 4;
  statusz.log_suppressed = 1;
  statusz.recorder_events = 10;
  statusz.recorder_total = 12;

  StatuszStream stream;
  stream.watermark = 1000;
  stream.horizon = 400;
  stream.retention = 600;
  stream.tolerance = 5;
  stream.buffered_events = 2;
  stream.late_events = 1;
  stream.resident_roots = 3;
  stream.resident_configurations = 4;
  stream.checkpoints_written = 2;
  stream.events_since_checkpoint = 7;

  EXPECT_EQ(
      RenderStatuszJson(statusz, &stream),
      "{\"requests_total\":7,\"frozen\":true,\"granularities\":12,"
      "\"threads\":4,"
      "\"admission\":{\"enabled\":true,\"queue_depth\":1,\"max_queue\":16,"
      "\"admitted\":6,\"shed\":2,\"degraded\":1,"
      "\"first_shed_cause\":\"saturated\","
      "\"classes\":[{\"class\":\"mine\",\"active\":1,\"slots\":1,"
      "\"p95_ms\":12.5}]},"
      "\"in_flight\":[{\"id\":5,\"class\":\"mine\",\"elapsed_ms\":3.0,"
      "\"governed\":true,\"deadline_remaining_ms\":47,\"steps_charged\":128,"
      "\"steps_budget\":4096,\"memory_bytes\":2048,"
      "\"memory_budget_bytes\":0},"
      "{\"id\":6,\"class\":\"stream\",\"elapsed_ms\":0.4,"
      "\"governed\":false}],"
      "\"obs\":{\"metric_series\":3,\"trace_spans\":9,\"trace_dropped\":0,"
      "\"log_emitted\":4,\"log_suppressed\":1,\"recorder_events\":10,"
      "\"recorder_total\":12},"
      "\"stream\":{\"watermark\":1000,\"horizon\":400,\"retention\":600,"
      "\"tolerance\":5,\"buffered_events\":2,\"late_events\":1,"
      "\"shed_events\":0,\"resident_roots\":3,"
      "\"resident_configurations\":4,\"checkpoints_written\":2,"
      "\"events_since_checkpoint\":7}}");
}

TEST_F(ObsRequestTest, EngineStatuszReflectsServedRequests) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  EngineStatusz cold = (*engine)->Statusz();
  EXPECT_EQ(cold.requests_total, 0u);
  EXPECT_FALSE(cold.frozen);
  EXPECT_TRUE(cold.in_flight.empty());

  StockWorkloadOptions workload_options;
  workload_options.trading_days = 25;
  workload_options.seed = 5;
  Workload workload =
      MakeStockWorkload(*(*engine)->system(), workload_options);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  ASSERT_TRUE((*engine)->Mine(request).ok());

  EngineStatusz warm = (*engine)->Statusz();
  EXPECT_EQ(warm.requests_total, 1u);
  EXPECT_TRUE(warm.frozen);
  EXPECT_GT(warm.granularities, 0u);
  EXPECT_TRUE(warm.in_flight.empty());  // nothing mid-flight now
}

// ---------------------------------------------------------------------------
// The determinism differential: logging must never change an answer

// One mining run distilled to a comparable fingerprint (every field the
// stdout report prints, minus wall-clock).
std::string MineFingerprint(int threads, bool logging) {
  EventLog::Global().ResetForTest();
  std::string capture;
  if (logging) {
    EventLog::Global().CaptureForTest(&capture);
    EventLog::Global().set_min_level(LogLevel::kDebug);
  }
  EngineOptions options;
  options.num_threads = threads;
  auto engine = Engine::CreateGregorian(options);
  EXPECT_TRUE(engine.ok());
  StockWorkloadOptions workload_options;
  workload_options.trading_days = 40;
  workload_options.plant_probability = 0.6;
  workload_options.noise_events_per_day = 1.0;
  workload_options.seed = 1313;
  Workload workload =
      MakeStockWorkload(*(*engine)->system(), workload_options);
  auto structure = BuildFigure1a(*(*engine)->system());
  EXPECT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  auto response = (*engine)->Mine(request);
  EXPECT_TRUE(response.ok()) << response.status();
  EventLog::Global().ResetForTest();

  const MiningReport& report = response->report;
  std::string fingerprint;
  fingerprint += std::to_string(report.events_before) + "/";
  fingerprint += std::to_string(report.events_after_reduction) + "/";
  fingerprint += std::to_string(report.total_roots) + "/";
  fingerprint += std::to_string(report.roots_after_reduction) + "/";
  fingerprint += std::to_string(report.candidates_before) + "/";
  fingerprint += std::to_string(report.candidates_after_screening) + "/";
  fingerprint += std::to_string(report.tag_runs) + "\n";
  for (const DiscoveredType& found : report.solutions) {
    fingerprint += std::to_string(found.frequency) + ":";
    for (EventTypeId type : found.assignment) {
      fingerprint += " " + std::to_string(type);
    }
    fingerprint += "\n";
  }
  return fingerprint;
}

TEST_F(ObsRequestTest, ReportsAreIdenticalWithLoggingOnOrOffAt1And4Threads) {
  const std::string baseline = MineFingerprint(1, /*logging=*/false);
  ASSERT_NE(baseline.find('\n'), std::string::npos);
  EXPECT_EQ(baseline, MineFingerprint(1, /*logging=*/true));
  EXPECT_EQ(baseline, MineFingerprint(4, /*logging=*/false));
  EXPECT_EQ(baseline, MineFingerprint(4, /*logging=*/true));
}

}  // namespace
}  // namespace granmine
