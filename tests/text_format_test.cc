#include "granmine/io/text_format.h"

#include <gtest/gtest.h>

#include "granmine/granularity/civil_calendar.h"

namespace granmine {
namespace {

class TextFormatTest : public testing::Test {
 protected:
  TextFormatTest() : system_(GranularitySystem::Gregorian()) {}
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(TextFormatTest, ParsesFigure1a) {
  const char* kText = R"(
    # Figure 1(a)
    rise -> report : [1,1] b-day
    report -> fall : [0,1] week
    rise -> hp     : [0,5] b-day
    hp -> fall     : [0,8] hour
  )";
  std::vector<std::string> names;
  auto structure = ParseEventStructure(kText, *system_, &names);
  ASSERT_TRUE(structure.ok()) << structure.status();
  EXPECT_EQ(structure->variable_count(), 4);
  EXPECT_EQ(names, (std::vector<std::string>{"rise", "report", "fall", "hp"}));
  EXPECT_TRUE(structure->FindRoot().ok());
  const std::vector<Tcg>* tcgs = structure->FindEdge(0, 1);
  ASSERT_NE(tcgs, nullptr);
  EXPECT_EQ((*tcgs)[0].ToString(), "[1,1]b-day");
}

TEST_F(TextFormatTest, ParsesConjunctionsAndInf) {
  auto structure = ParseEventStructure(
      "a -> b : [11,11] month, [0,0] year\n"
      "a -> c : [1,inf] day\n",
      *system_);
  ASSERT_TRUE(structure.ok()) << structure.status();
  const std::vector<Tcg>* ab = structure->FindEdge(0, 1);
  ASSERT_NE(ab, nullptr);
  ASSERT_EQ(ab->size(), 2u);
  EXPECT_EQ((*ab)[1].ToString(), "[0,0]year");
  const std::vector<Tcg>* ac = structure->FindEdge(0, 2);
  ASSERT_NE(ac, nullptr);
  EXPECT_EQ((*ac)[0].ToString(), "[1,inf]day");
}

TEST_F(TextFormatTest, StructureParserRejectsGarbage) {
  EXPECT_FALSE(ParseEventStructure("a b : [0,1] day", *system_).ok());
  EXPECT_FALSE(ParseEventStructure("a -> b [0,1] day", *system_).ok());
  EXPECT_FALSE(ParseEventStructure("a -> b : [0,1] years!", *system_).ok());
  EXPECT_FALSE(ParseEventStructure("a -> b : [x,1] day", *system_).ok());
  EXPECT_FALSE(ParseEventStructure("a -> b : [5,1] day", *system_).ok());
  EXPECT_FALSE(ParseEventStructure("a -> a : [0,1] day", *system_).ok());
  EXPECT_TRUE(ParseEventStructure("  # only comments\n\n", *system_).ok());
}

TEST_F(TextFormatTest, StructureErrorsCarryLineAndColumn) {
  // Bad interval bound on line 2: "a -> b : [x,1] day". The 'x' sits at
  // column 11 of the trimmed-at-source line below (1-based, counting from
  // the raw line start including leading spaces).
  auto bad_lo = ParseEventStructure(
      "a -> c : [0,1] day\n"
      "a -> b : [x,1] day\n",
      *system_);
  ASSERT_FALSE(bad_lo.ok());
  EXPECT_NE(bad_lo.status().message().find("line 2"), std::string::npos)
      << bad_lo.status();
  EXPECT_NE(bad_lo.status().message().find("column 11"), std::string::npos)
      << bad_lo.status();
  EXPECT_NE(bad_lo.status().message().find("expected an integer"),
            std::string::npos)
      << bad_lo.status();

  // Bad upper bound, with leading whitespace shifting the column.
  auto bad_hi = ParseEventStructure("  a -> b : [0,?] day\n", *system_);
  ASSERT_FALSE(bad_hi.ok());
  EXPECT_NE(bad_hi.status().message().find("line 1, column 15"),
            std::string::npos)
      << bad_hi.status();

  // Unknown granularity names point at the name, not the line start.
  auto bad_gran = ParseEventStructure("a -> b : [0,1] years!\n", *system_);
  ASSERT_FALSE(bad_gran.ok());
  EXPECT_NE(bad_gran.status().message().find("line 1, column 16"),
            std::string::npos)
      << bad_gran.status();
  EXPECT_NE(bad_gran.status().message().find("unknown granularity"),
            std::string::npos)
      << bad_gran.status();
}

TEST_F(TextFormatTest, SequenceErrorsCarryLineAndColumn) {
  EventTypeRegistry registry;
  auto bad = ParseEventSequence(
      "3600 tick\n"
      "1970-99-01 foo\n",
      &registry);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2, column 1"),
            std::string::npos)
      << bad.status();
}

TEST_F(TextFormatTest, GranularityDefinitions) {
  auto system = GranularitySystem::Gregorian();
  // Every constructor once.
  auto shift = ParseGranularityDefinition("shift", "group(hour, 8)",
                                          system.get());
  ASSERT_TRUE(shift.ok()) << shift.status();
  EXPECT_EQ((*shift)->TickHull(1), TimeSpan::Of(0, 8 * 3600 - 1));
  auto fiscal = ParseGranularityDefinition(
      "fiscal-year", "group(month, 12, 3)", system.get());
  ASSERT_TRUE(fiscal.ok()) << fiscal.status();
  auto tiny = ParseGranularityDefinition("tiny", "uniform(10, -3)",
                                         system.get());
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ((*tiny)->TickHull(1), TimeSpan::Of(-3, 6));
  auto odd = ParseGranularityDefinition("odd-day", "filter(day, 2, 0)",
                                        system.get());
  ASSERT_TRUE(odd.ok()) << odd.status();
  EXPECT_EQ((*odd)->TickHull(2)->first, 2 * 86400);
  auto synth = ParseGranularityDefinition("blip", "synthetic(10, 0-2 5-6)",
                                          system.get());
  ASSERT_TRUE(synth.ok()) << synth.status();
  EXPECT_EQ((*synth)->TickHull(2), TimeSpan::Of(5, 6));
  auto by = ParseGranularityDefinition("odd-by-month",
                                       "groupby(odd-day, month)",
                                       system.get());
  ASSERT_TRUE(by.ok()) << by.status();

  // Errors.
  EXPECT_FALSE(
      ParseGranularityDefinition("shift", "uniform(5)", system.get()).ok());
  EXPECT_FALSE(
      ParseGranularityDefinition("x", "frobnicate(3)", system.get()).ok());
  EXPECT_FALSE(
      ParseGranularityDefinition("y", "group(nope, 2)", system.get()).ok());
  EXPECT_FALSE(
      ParseGranularityDefinition("z", "uniform(0)", system.get()).ok());
  EXPECT_FALSE(
      ParseGranularityDefinition("w", "synthetic(5, 3-9)", system.get())
          .ok());
}

TEST_F(TextFormatTest, StructureWithInlineGranularity) {
  auto system = GranularitySystem::Gregorian();
  const char* kText = R"(
    granularity shift = group(hour, 8)
    open -> close : [0,0] shift
  )";
  auto structure = ParseEventStructure(kText, system.get());
  ASSERT_TRUE(structure.ok()) << structure.status();
  EXPECT_EQ(structure->variable_count(), 2);
  ASSERT_NE(system->Find("shift"), nullptr);
  const std::vector<Tcg>* tcgs = structure->FindEdge(0, 1);
  ASSERT_NE(tcgs, nullptr);
  EXPECT_EQ((*tcgs)[0].granularity, system->Find("shift"));
  // The const overload rejects declarations.
  EXPECT_FALSE(ParseEventStructure(
                   kText, static_cast<const GranularitySystem&>(*system))
                   .ok());
}

TEST_F(TextFormatTest, ParsesCivilTimestamps) {
  auto t = ParseTimePoint("1970-01-05 10:30:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 4 * kSecondsPerDay + 10 * 3600 + 30 * 60);
  auto midnight = ParseTimePoint("1970-01-02");
  ASSERT_TRUE(midnight.ok());
  EXPECT_EQ(*midnight, kSecondsPerDay);
  EXPECT_FALSE(ParseTimePoint("1970-13-01").ok());
  EXPECT_FALSE(ParseTimePoint("1970-02-30").ok());
  EXPECT_FALSE(ParseTimePoint("1970-01-01 25:00:00").ok());
  EXPECT_FALSE(ParseTimePoint("yesterday").ok());
  // Day-grained calendars reject time-of-day.
  EXPECT_FALSE(ParseTimePoint("1970-01-01 10:00:00", 1).ok());
  auto day_grained = ParseTimePoint("1970-01-03", 1);
  ASSERT_TRUE(day_grained.ok());
  EXPECT_EQ(*day_grained, 2);
}

TEST_F(TextFormatTest, ParsesEventSequences) {
  EventTypeRegistry registry;
  auto seq = ParseEventSequence(
      "1970-01-05 10:00:00  IBM-rise\n"
      "1970-01-06           IBM-earnings-report  # midnight\n"
      "3600                 tick\n",
      &registry);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_EQ(seq->size(), 3u);
  EXPECT_EQ(registry.size(), 3);
  // Sorted by time: the raw-seconds event comes first.
  EXPECT_EQ(seq->events()[0].time, 3600);
  EXPECT_EQ(registry.name(seq->events()[0].type), "tick");
  EXPECT_EQ(seq->events()[1].time, 4 * kSecondsPerDay + 10 * 3600);
}

TEST_F(TextFormatTest, SequenceParserRejectsGarbage) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ParseEventSequence("loneword\n", &registry).ok());
  EXPECT_FALSE(ParseEventSequence("1970-99-01 foo\n", &registry).ok());
}

TEST_F(TextFormatTest, FormatTimePointRoundTrip) {
  EXPECT_EQ(FormatTimePoint(0), "1970-01-01 Thu 00:00:00");
  EXPECT_EQ(FormatTimePoint(4 * kSecondsPerDay + 10 * 3600 + 30 * 60 + 5),
            "1970-01-05 Mon 10:30:05");
  EXPECT_EQ(FormatTimePoint(2, 1), "1970-01-03 Sat");
  // Round trip through the parser.
  auto parsed = ParseTimePoint("2001-09-09 01:46:40");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(FormatTimePoint(*parsed), "2001-09-09 Sun 01:46:40");
}

}  // namespace
}  // namespace granmine
