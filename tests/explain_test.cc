#include "granmine/mining/explain.h"

#include <gtest/gtest.h>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

TEST(ExplainTest, ProducesCheckableWitnesses) {
  auto system = GranularitySystem::Gregorian();
  StockWorkloadOptions options;
  options.trading_days = 40;
  options.plant_probability = 1.0;
  options.noise_events_per_day = 1.0;
  options.seed = 17;
  Workload workload = MakeStockWorkload(*system, options);

  auto structure = BuildFigure1a(*system);
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.5;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[1] = {*workload.registry.Find("IBM-earnings-report")};
  problem.allowed[2] = {*workload.registry.Find("HP-rise")};
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};
  Miner miner(system.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->solutions.size(), 1u);

  auto explanations =
      ExplainSolution(*structure, report->solutions[0],
                      problem.reference_type, workload.sequence, 3);
  ASSERT_TRUE(explanations.ok()) << explanations.status();
  ASSERT_EQ(explanations->size(), 3u);
  for (const Explanation& explanation : *explanations) {
    // Witness types follow the assignment and satisfy every TCG.
    std::vector<TimePoint> times(4);
    for (VariableId v = 0; v < 4; ++v) {
      const Event& event =
          workload.sequence.events()[explanation.witness[v]];
      EXPECT_EQ(event.type, report->solutions[0].assignment[v]);
      times[static_cast<std::size_t>(v)] = event.time;
    }
    for (const EventStructure::Edge& edge : structure->edges()) {
      for (const Tcg& tcg : edge.tcgs) {
        EXPECT_TRUE(Satisfies(tcg, times[edge.from], times[edge.to]));
      }
    }
    // The root variable is bound to the reference occurrence itself.
    EXPECT_EQ(explanation.witness[0], explanation.root_event);
  }

  std::string rendered = FormatExplanation(
      *structure, explanations->front(), workload.sequence,
      workload.registry);
  EXPECT_NE(rendered.find("X0 = IBM-rise @ "), std::string::npos);
  EXPECT_NE(rendered.find("X2 = HP-rise @ "), std::string::npos);
}

TEST(ExplainTest, RejectsMismatchedSolutions) {
  auto system = GranularitySystem::Gregorian();
  auto structure = BuildFigure1a(*system);
  ASSERT_TRUE(structure.ok());
  EventSequence seq;
  seq.Add(0, 0);
  DiscoveredType wrong_size;
  wrong_size.assignment = {0, 1};
  EXPECT_FALSE(ExplainSolution(*structure, wrong_size, 0, seq).ok());
  DiscoveredType wrong_root;
  wrong_root.assignment = {5, 1, 2, 3};
  EXPECT_FALSE(ExplainSolution(*structure, wrong_root, 0, seq).ok());
}

}  // namespace
}  // namespace granmine
