#include "granmine/mining/miner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "granmine/common/random.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/mining/reduction.h"
#include "granmine/mining/screening.h"
#include "granmine/mining/windows.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

// Solutions as comparable (assignment, matched) pairs.
std::vector<std::pair<std::vector<EventTypeId>, std::size_t>> Normalize(
    const MiningReport& report) {
  std::vector<std::pair<std::vector<EventTypeId>, std::size_t>> out;
  for (const DiscoveredType& d : report.solutions) {
    out.emplace_back(d.assignment, d.matched_roots);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class StockMiningTest : public testing::Test {
 protected:
  StockMiningTest() : system_(GranularitySystem::Gregorian()) {
    auto fig1a = BuildFigure1a(*system_);
    EXPECT_TRUE(fig1a.ok());
    structure_ = *std::move(fig1a);
  }
  std::unique_ptr<GranularitySystem> system_;
  EventStructure structure_;
};

TEST_F(StockMiningTest, Example2DiscoversThePlantedPattern) {
  // Example 2: (S, 0.8, IBM-rise, σ) with σ(X3) = {IBM-fall} and the other
  // variables free. With plant probability 1 and modest noise the planted
  // IBM-report/HP-rise assignment must be found with frequency 1.
  StockWorkloadOptions options;
  options.trading_days = 80;
  options.plant_probability = 1.0;
  options.noise_events_per_day = 0.5;
  options.seed = 11;
  Workload workload = MakeStockWorkload(*system_, options);

  DiscoveryProblem problem;
  problem.structure = &structure_;
  problem.min_confidence = 0.8;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  Miner miner(system_.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->solutions.size(), 1u);
  const DiscoveredType& found = report->solutions[0];
  EXPECT_EQ(found.assignment[0], *workload.registry.Find("IBM-rise"));
  EXPECT_EQ(found.assignment[1],
            *workload.registry.Find("IBM-earnings-report"));
  EXPECT_EQ(found.assignment[2], *workload.registry.Find("HP-rise"));
  EXPECT_EQ(found.assignment[3], *workload.registry.Find("IBM-fall"));
  // Noise IBM-rise events count as reference occurrences too, so the
  // frequency is planted/total — above the 0.8 threshold by construction.
  EXPECT_GT(found.frequency, 0.8);
  EXPECT_GE(found.matched_roots, workload.planted);
  EXPECT_LE(found.matched_roots, report->total_roots);
}

TEST_F(StockMiningTest, ConfidenceThresholdIsStrict) {
  // Plant ~half of the anchors; at θ = 0.95 nothing qualifies, at θ = 0.2
  // the planted assignment does.
  StockWorkloadOptions options;
  options.trading_days = 80;
  options.plant_probability = 0.5;
  options.noise_events_per_day = 0.5;
  options.seed = 5;
  Workload workload = MakeStockWorkload(*system_, options);
  ASSERT_GT(workload.planted, 2u);

  DiscoveryProblem problem;
  problem.structure = &structure_;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[1] = {*workload.registry.Find("IBM-earnings-report")};
  problem.allowed[2] = {*workload.registry.Find("HP-rise")};
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  Miner miner(system_.get());
  problem.min_confidence = 0.95;
  auto strict = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->solutions.empty());

  problem.min_confidence = 0.2;
  auto loose = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(loose.ok());
  ASSERT_EQ(loose->solutions.size(), 1u);
  // Frequency counts each reference occurrence once.
  EXPECT_GE(loose->solutions[0].matched_roots, workload.planted);
  EXPECT_LE(loose->solutions[0].matched_roots, loose->total_roots);
}

TEST_F(StockMiningTest, NaiveAndOptimizedAgree) {
  StockWorkloadOptions options;
  options.trading_days = 48;
  options.plant_probability = 0.6;
  options.noise_events_per_day = 2.0;
  options.noise_ticker_count = 1;
  options.seed = 21;
  Workload workload = MakeStockWorkload(*system_, options);

  DiscoveryProblem problem;
  problem.structure = &structure_;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  Miner naive(system_.get(), MinerOptions::Naive());
  Miner optimized(system_.get());
  auto naive_report = naive.Mine(problem, workload.sequence);
  auto optimized_report = optimized.Mine(problem, workload.sequence);
  ASSERT_TRUE(naive_report.ok()) << naive_report.status();
  ASSERT_TRUE(optimized_report.ok()) << optimized_report.status();
  EXPECT_EQ(Normalize(*naive_report), Normalize(*optimized_report));
  // The optimizations actually did something.
  EXPECT_LT(optimized_report->candidates_after_screening,
            naive_report->candidates_before);
  EXPECT_LE(optimized_report->tag_runs, naive_report->tag_runs);
}

TEST_F(StockMiningTest, StepInstrumentationIsPopulated) {
  StockWorkloadOptions options;
  options.trading_days = 40;
  options.seed = 33;
  Workload workload = MakeStockWorkload(*system_, options);
  DiscoveryProblem problem;
  problem.structure = &structure_;
  // Low threshold: noise IBM-rise occurrences dilute the frequency.
  problem.min_confidence = 0.15;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};
  Miner miner(system_.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->total_roots, 0u);
  EXPECT_GT(report->events_before, 0u);
  EXPECT_LE(report->events_after_reduction, report->events_before);
  EXPECT_LE(report->roots_after_reduction, report->total_roots);
  EXPECT_LE(report->candidates_after_screening, report->candidates_before);
  EXPECT_GT(report->tag_runs, 0u);
}

TEST_F(StockMiningTest, InconsistentStructureIsRefutedUpfront) {
  // Same hour but two days apart: impossible.
  EventStructure bad;
  VariableId x0 = bad.AddVariable("X0");
  VariableId x1 = bad.AddVariable("X1");
  ASSERT_TRUE(bad.AddConstraint(x0, x1, Tcg::Same(system_->Find("hour")))
                  .ok());
  ASSERT_TRUE(
      bad.AddConstraint(x0, x1, Tcg::Of(2, 2, system_->Find("day"))).ok());
  StockWorkloadOptions options;
  options.trading_days = 20;
  Workload workload = MakeStockWorkload(*system_, options);
  DiscoveryProblem problem;
  problem.structure = &bad;
  problem.min_confidence = 0.0;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  Miner miner(system_.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->refuted_by_propagation);
  EXPECT_TRUE(report->solutions.empty());
  EXPECT_EQ(report->tag_runs, 0u);
}

// Randomized cross-validation of the whole pipeline on a toy calendar:
// naive == every ablation combination.
class ToyMiningTest : public testing::Test {
 protected:
  ToyMiningTest() {
    unit_ = toy_.AddUniform("unit", 1);
    three_ = toy_.AddUniform("three", 3);
    gapped_ = toy_.AddSynthetic("gapped", 4, {TimeSpan::Of(0, 2)});
  }
  GranularitySystem toy_;
  const Granularity* unit_;
  const Granularity* three_;
  const Granularity* gapped_;
};

TEST_F(ToyMiningTest, AblationsAgreeWithNaive) {
  Rng rng(4242);
  const Granularity* types[] = {unit_, three_, gapped_};
  int nonempty = 0;
  for (int trial = 0; trial < 25; ++trial) {
    // Random rooted structure over 3 variables.
    EventStructure s;
    const int n = 3;
    for (int v = 0; v < n; ++v) s.AddVariable("X" + std::to_string(v));
    for (int v = 1; v < n; ++v) {
      std::int64_t lo = rng.Uniform(0, 2);
      ASSERT_TRUE(s.AddConstraint(static_cast<int>(rng.Uniform(0, v - 1)), v,
                                  Tcg::Of(lo, lo + rng.Uniform(0, 2),
                                          types[rng.Index(3)]))
                      .ok());
    }
    if (!s.FindRoot().ok()) continue;
    VariableId root = *s.FindRoot();

    const int kTypeCount = 3;
    EventSequence seq;
    TimePoint t = 0;
    for (int i = 0; i < 40; ++i) {
      t += rng.Uniform(0, 3);
      seq.Add(static_cast<EventTypeId>(rng.Uniform(0, kTypeCount - 1)), t);
    }

    DiscoveryProblem problem;
    problem.structure = &s;
    problem.min_confidence = 0.05 + 0.3 * rng.UniformReal();
    problem.reference_type = 0;
    if (seq.CountOf(0) == 0) continue;

    Miner naive(&toy_, MinerOptions::Naive());
    auto baseline = naive.Mine(problem, seq);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    if (!baseline->solutions.empty()) ++nonempty;

    for (int mask = 1; mask < 16; ++mask) {
      MinerOptions options = MinerOptions::Naive();
      options.check_consistency = mask & 1;
      options.reduce_sequence = mask & 2;
      options.reduce_roots = mask & 4;
      options.screening_depth = (mask & 8) ? 2 : 0;
      options.use_window_deadlines = mask & 4;
      Miner ablated(&toy_, options);
      auto report = ablated.Mine(problem, seq);
      ASSERT_TRUE(report.ok()) << report.status();
      ASSERT_EQ(Normalize(*baseline), Normalize(*report))
          << s.ToString() << "\nmask=" << mask << " trial=" << trial
          << " theta=" << problem.min_confidence << " root=" << root;
    }
  }
  EXPECT_GT(nonempty, 5);  // the family exercises real discoveries
}

TEST_F(ToyMiningTest, EmptyReferenceYieldsEmptyReport) {
  EventStructure s;
  s.AddVariable("X0");
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.reference_type = 7;
  EventSequence seq;
  seq.Add(0, 1);
  Miner miner(&toy_);
  auto report = miner.Mine(problem, seq);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_roots, 0u);
  EXPECT_TRUE(report->solutions.empty());
}

TEST_F(ToyMiningTest, UnrootedStructureRejected) {
  EventStructure s;
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  VariableId c = s.AddVariable("C");
  ASSERT_TRUE(s.AddConstraint(a, c, Tcg::Same(unit_)).ok());
  ASSERT_TRUE(s.AddConstraint(b, c, Tcg::Same(unit_)).ok());
  DiscoveryProblem problem;
  problem.structure = &s;
  Miner miner(&toy_);
  EXPECT_FALSE(miner.Mine(problem, EventSequence()).ok());
}

TEST_F(ToyMiningTest, CandidateCapIsEnforced) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 5, unit_)).ok());
  EventSequence seq;
  for (int i = 0; i < 30; ++i) seq.Add(i % 10, i);
  DiscoveryProblem problem;
  problem.structure = &s;
  problem.reference_type = 0;
  problem.min_confidence = 0.0;
  MinerOptions options = MinerOptions::Naive();
  options.max_candidates = 3;  // 10 types would be needed
  Miner miner(&toy_, options);
  auto report = miner.Mine(problem, seq);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace granmine
