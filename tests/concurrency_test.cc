// Concurrency gate for the shared caching substrate and the parallel miner:
// hammers GranularityTables and SupportCoverageCache from many threads
// against serial oracles, exercises the Executor itself, and asserts the
// Miner's determinism guarantee (num_threads ∈ {1, 2, 8} produce identical
// reports). Run under GRANMINE_SANITIZE=thread to certify data-race freedom.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "granmine/common/executor.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

TEST(ExecutorTest, RunsEveryIndexExactlyOnce) {
  Executor executor(4);
  EXPECT_EQ(executor.num_threads(), 4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  executor.ParallelFor(kCount, [&](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, MapCollectsResultsInIndexOrder) {
  Executor executor(3);
  std::vector<std::int64_t> out = executor.ParallelMap<std::int64_t>(
      1000, [](std::size_t i, int) { return static_cast<std::int64_t>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(ExecutorTest, SingleThreadRunsInline) {
  Executor executor(1);
  std::thread::id caller = std::this_thread::get_id();
  executor.ParallelFor(100, [&](std::size_t, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ExecutorTest, WorkerExceptionIsRethrownOnTheCaller) {
  Executor executor(4);
  constexpr std::size_t kCount = 4'000;
  std::atomic<std::size_t> executed{0};
  bool caught = false;
  try {
    executor.ParallelFor(kCount, [&](std::size_t i, int) {
      if (i == 1234) throw std::runtime_error("injected worker failure");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "injected worker failure");
  }
  EXPECT_TRUE(caught);
  // Failure abandons unclaimed items: strictly fewer than all ran.
  EXPECT_LT(executed.load(), kCount);
  // The pool survives a failed loop — the next loop runs normally.
  std::atomic<std::size_t> after{0};
  executor.ParallelFor(100, [&](std::size_t, int) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ExecutorTest, FirstExceptionWinsWhenSeveralWorkersThrow) {
  Executor executor(4);
  bool caught = false;
  try {
    executor.ParallelFor(1'000, [](std::size_t, int) {
      throw std::runtime_error("every item fails");
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "every item fails");
  }
  EXPECT_TRUE(caught);
}

TEST(ExecutorTest, SerialPathPropagatesExceptionsNaturally) {
  Executor executor(1);
  EXPECT_THROW(executor.ParallelFor(
                   10, [](std::size_t i, int) {
                     if (i == 3) throw std::logic_error("serial failure");
                   }),
               std::logic_error);
}

TEST(ExecutorTest, CancelTokenStopsClaimsButNeverInterruptsInFlightWork) {
  Executor executor(4);
  constexpr std::size_t kCount = 100'000;
  std::atomic<bool> cancel{false};
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> finished{0};
  executor.ParallelFor(
      kCount,
      [&](std::size_t i, int) {
        started.fetch_add(1, std::memory_order_relaxed);
        if (i == 50) cancel.store(true, std::memory_order_relaxed);
        finished.fetch_add(1, std::memory_order_relaxed);
      },
      &cancel);
  // Every started item finished (cancellation is cooperative, observed only
  // between claims), and the token cut the loop well short of completion.
  EXPECT_EQ(started.load(), finished.load());
  EXPECT_LT(finished.load(), kCount);
  EXPECT_GT(finished.load(), 0u);
}

TEST(ExecutorTest, PreCancelledTokenRunsNothing) {
  Executor executor(4);
  std::atomic<bool> cancel{true};
  std::atomic<std::size_t> ran{0};
  executor.ParallelFor(
      10'000,
      [&](std::size_t, int) { ran.fetch_add(1, std::memory_order_relaxed); },
      &cancel);
  EXPECT_EQ(ran.load(), 0u);
  // Serial path honours the token too.
  Executor serial(1);
  serial.ParallelFor(
      100,
      [&](std::size_t, int) { ran.fetch_add(1, std::memory_order_relaxed); },
      &cancel);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ExecutorTest, BackToBackLoopsReuseThePool) {
  Executor executor(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    executor.ParallelFor(round + 1, [&](std::size_t i, int) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    std::size_t n = static_cast<std::size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

// The table queries issued by every thread, over mixed Gregorian types —
// small ks the constraint algorithms hit plus larger scan-heavy ones.
struct TableQuery {
  const char* granularity;
  std::int64_t k;
};

constexpr TableQuery kTableQueries[] = {
    {"month", 1},  {"month", 2},  {"month", 12}, {"month", 48},
    {"year", 1},   {"year", 4},   {"b-day", 1},  {"b-day", 2},
    {"b-day", 5},  {"b-day", 23}, {"week", 1},   {"week", 2},
    {"day", 1},    {"day", 17},   {"b-week", 1}, {"b-week", 3},
    {"b-month", 1}, {"b-month", 2}, {"quarter", 1}, {"quarter", 5},
};

TEST(ConcurrentTablesTest, HammeredQueriesMatchTheSerialOracle) {
  // Serial oracle: a private system whose tables are filled one thread at a
  // time.
  auto oracle_system = GranularitySystem::Gregorian();
  std::map<std::tuple<std::string, std::int64_t, int>,
           std::optional<std::int64_t>>
      oracle;
  for (const TableQuery& q : kTableQueries) {
    const Granularity* g = oracle_system->Find(q.granularity);
    ASSERT_NE(g, nullptr) << q.granularity;
    oracle[{q.granularity, q.k, 0}] = oracle_system->tables().MinSize(*g, q.k);
    oracle[{q.granularity, q.k, 1}] = oracle_system->tables().MaxSize(*g, q.k);
    oracle[{q.granularity, q.k, 2}] = oracle_system->tables().MinGap(*g, q.k);
  }

  // Shared system hammered cold: every thread issues every query, each
  // starting from a different offset so lock acquisition interleaves.
  auto shared_system = GranularitySystem::Gregorian();
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GranularityTables& tables = shared_system->tables();
      const std::size_t n = std::size(kTableQueries);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t j = 0; j < n; ++j) {
          const TableQuery& q =
              kTableQueries[(j + static_cast<std::size_t>(t)) % n];
          const Granularity* g = shared_system->Find(q.granularity);
          if (tables.MinSize(*g, q.k) != oracle[{q.granularity, q.k, 0}] ||
              tables.MaxSize(*g, q.k) != oracle[{q.granularity, q.k, 1}] ||
              tables.MinGap(*g, q.k) != oracle[{q.granularity, q.k, 2}]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Same hammering, but against a *frozen* system: every query lands in the
// sealed id-indexed arrays, so TSAN certifies the wait-free read path (the
// hashed-memo test above certifies the sharded-mutex path).
TEST(ConcurrentTablesTest, FrozenSystemHammeredQueriesMatchTheSerialOracle) {
  auto oracle_system = GranularitySystem::Gregorian();
  std::map<std::tuple<std::string, std::int64_t, int>,
           std::optional<std::int64_t>>
      oracle;
  for (const TableQuery& q : kTableQueries) {
    const Granularity* g = oracle_system->Find(q.granularity);
    ASSERT_NE(g, nullptr) << q.granularity;
    oracle[{q.granularity, q.k, 0}] = oracle_system->tables().MinSize(*g, q.k);
    oracle[{q.granularity, q.k, 1}] = oracle_system->tables().MaxSize(*g, q.k);
    oracle[{q.granularity, q.k, 2}] = oracle_system->tables().MinGap(*g, q.k);
  }

  auto shared_system = GranularitySystem::Gregorian();
  ASSERT_TRUE(shared_system->Freeze().ok());
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GranularityTables& tables = shared_system->tables();
      const std::size_t n = std::size(kTableQueries);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t j = 0; j < n; ++j) {
          const TableQuery& q =
              kTableQueries[(j + static_cast<std::size_t>(t)) % n];
          const Granularity* g = shared_system->Find(q.granularity);
          if (tables.MinSize(*g, q.k) != oracle[{q.granularity, q.k, 0}] ||
              tables.MaxSize(*g, q.k) != oracle[{q.granularity, q.k, 1}] ||
              tables.MinGap(*g, q.k) != oracle[{q.granularity, q.k, 2}]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentTablesTest, InverseQueriesAreSafeUnderContention) {
  auto oracle_system = GranularitySystem::Gregorian();
  auto shared_system = GranularitySystem::Gregorian();
  const std::int64_t xs[] = {1, 28, 29, 365, 366, 1000};
  std::map<std::int64_t, std::optional<std::int64_t>> covering, exceeding;
  {
    const Granularity* month = oracle_system->Find("month");
    for (std::int64_t x : xs) {
      covering[x] = oracle_system->tables().LeastTicksCovering(*month, x);
      exceeding[x] = oracle_system->tables().LeastTicksExceeding(*month, x);
    }
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      const Granularity* month = shared_system->Find("month");
      for (int round = 0; round < 50; ++round) {
        for (std::int64_t x : xs) {
          if (shared_system->tables().LeastTicksCovering(*month, x) !=
                  covering[x] ||
              shared_system->tables().LeastTicksExceeding(*month, x) !=
                  exceeding[x]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentCoverageTest, HammeredCoversMatchesTheSerialFunction) {
  auto system = GranularitySystem::Gregorian();
  // Mixed full-support and gapped types; the group-by types (b-week,
  // b-month) are omitted — their joint-period scans take tens of seconds on
  // one core and exercise the same cache paths as the b-day pairs.
  const char* names[] = {"second", "hour", "day",   "week",       "month",
                         "year",   "quarter", "b-day", "weekend-day"};
  // Serial oracle straight from the pure function.
  std::map<std::pair<const Granularity*, const Granularity*>, bool> oracle;
  for (const char* target : names) {
    for (const char* source : names) {
      const Granularity* t = system->Find(target);
      const Granularity* s = system->Find(source);
      oracle[{t, s}] = SupportCovers(*t, *s);
    }
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      SupportCoverageCache& coverage = system->coverage();
      for (int round = 0; round < 20; ++round) {
        for (const char* target : names) {
          for (const char* source : names) {
            const Granularity* tg = system->Find(target);
            const Granularity* sg = system->Find(source);
            // Stagger directions per thread so shards see mixed traffic.
            bool got = (t % 2 == 0) ? coverage.Covers(*tg, *sg)
                                    : coverage.Covers(*sg, *tg);
            bool want = (t % 2 == 0) ? oracle[{tg, sg}] : oracle[{sg, tg}];
            if (got != want) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EventSequenceTest, AddKeepsSortedOrderEagerly) {
  EventSequence sequence;
  sequence.Add(1, 50);
  sequence.Add(2, 10);
  sequence.Add(3, 50);  // equal timestamp: after the earlier type-1 event
  sequence.Add(4, 30);
  const std::vector<Event>& events = sequence.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[1].time, 30);
  EXPECT_EQ(events[2].time, 50);
  EXPECT_EQ(events[2].type, 1);
  EXPECT_EQ(events[3].time, 50);
  EXPECT_EQ(events[3].type, 3);
}

TEST(EventSequenceTest, ConstructorSortsStably) {
  std::vector<Event> raw = {{7, 20}, {1, 5}, {8, 20}, {2, 5}};
  EventSequence sequence(std::move(raw));
  const std::vector<Event>& events = sequence.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, 1);
  EXPECT_EQ(events[1].type, 2);
  EXPECT_EQ(events[2].type, 7);  // stable for equal timestamps
  EXPECT_EQ(events[3].type, 8);
}

// The determinism guarantee: any thread count yields the byte-identical
// solution list, in lexicographic assignment order, with identical
// instrumentation counters.
TEST(ParallelMinerTest, ThreadCountNeverChangesTheReport) {
  auto system = GranularitySystem::Gregorian();
  auto figure = BuildFigure1a(*system);
  ASSERT_TRUE(figure.ok());
  EventStructure structure = *std::move(figure);

  StockWorkloadOptions workload_options;
  workload_options.trading_days = 50;
  workload_options.plant_probability = 0.7;
  workload_options.noise_events_per_day = 1.5;
  workload_options.noise_ticker_count = 2;
  workload_options.seed = 99;
  Workload workload = MakeStockWorkload(*system, workload_options);

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  MinerOptions serial_options;
  serial_options.num_threads = 1;
  Miner serial(system.get(), serial_options);
  Result<MiningReport> want = serial.Mine(problem, workload.sequence);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_FALSE(want->solutions.empty());

  for (int threads : {2, 8}) {
    MinerOptions options;
    options.num_threads = threads;
    Miner miner(system.get(), options);
    Result<MiningReport> got = miner.Mine(problem, workload.sequence);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->solutions.size(), want->solutions.size())
        << "num_threads=" << threads;
    for (std::size_t i = 0; i < want->solutions.size(); ++i) {
      EXPECT_EQ(got->solutions[i].assignment, want->solutions[i].assignment)
          << "num_threads=" << threads << " solution " << i;
      EXPECT_EQ(got->solutions[i].frequency, want->solutions[i].frequency);
      EXPECT_EQ(got->solutions[i].matched_roots,
                want->solutions[i].matched_roots);
    }
    EXPECT_EQ(got->tag_runs, want->tag_runs);
    EXPECT_EQ(got->matcher_configurations, want->matcher_configurations);
    EXPECT_EQ(got->candidates_after_screening,
              want->candidates_after_screening);
  }
}

// Same guarantee without the step 1-4 reductions: the naive pipeline drives
// far more candidates through the parallel scan.
TEST(ParallelMinerTest, NaivePipelineIsDeterministicToo) {
  auto system = GranularitySystem::Gregorian();
  auto figure = BuildFigure1a(*system);
  ASSERT_TRUE(figure.ok());
  EventStructure structure = *std::move(figure);

  StockWorkloadOptions workload_options;
  workload_options.trading_days = 25;
  workload_options.plant_probability = 0.9;
  workload_options.noise_events_per_day = 1.0;
  workload_options.noise_ticker_count = 1;
  workload_options.seed = 5;
  Workload workload = MakeStockWorkload(*system, workload_options);

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.4;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  MinerOptions serial_options = MinerOptions::Naive();
  serial_options.num_threads = 1;
  Miner serial(system.get(), serial_options);
  Result<MiningReport> want = serial.Mine(problem, workload.sequence);
  ASSERT_TRUE(want.ok()) << want.status();

  for (int threads : {2, 8}) {
    MinerOptions options = MinerOptions::Naive();
    options.num_threads = threads;
    Miner miner(system.get(), options);
    Result<MiningReport> got = miner.Mine(problem, workload.sequence);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->solutions.size(), want->solutions.size());
    for (std::size_t i = 0; i < want->solutions.size(); ++i) {
      EXPECT_EQ(got->solutions[i].assignment, want->solutions[i].assignment);
      EXPECT_EQ(got->solutions[i].frequency, want->solutions[i].frequency);
    }
    EXPECT_EQ(got->tag_runs, want->tag_runs);
  }
}

// Workers sharing one *cold* system must warm the caches cooperatively:
// concurrent Mine calls over the same GranularitySystem exercise the
// propagation-time table/coverage paths under contention.
TEST(ParallelMinerTest, ConcurrentMineCallsShareOneColdSystem) {
  auto system = GranularitySystem::Gregorian();
  auto figure = BuildFigure1a(*system);
  ASSERT_TRUE(figure.ok());
  EventStructure structure = *std::move(figure);

  StockWorkloadOptions workload_options;
  workload_options.trading_days = 30;
  workload_options.plant_probability = 1.0;
  workload_options.seed = 3;
  Workload workload = MakeStockWorkload(*system, workload_options);

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.5;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  std::vector<std::size_t> solution_counts(4, 0);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t t = 0; t < solution_counts.size(); ++t) {
    threads.emplace_back([&, t] {
      Miner miner(system.get());
      Result<MiningReport> report = miner.Mine(problem, workload.sequence);
      if (report.ok()) {
        solution_counts[t] = report->solutions.size();
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (std::size_t t = 1; t < solution_counts.size(); ++t) {
    EXPECT_EQ(solution_counts[t], solution_counts[0]);
  }
}

}  // namespace
}  // namespace granmine
