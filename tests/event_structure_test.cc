#include "granmine/constraint/event_structure.h"

#include <gtest/gtest.h>

#include "granmine/constraint/propagation.h"
#include "granmine/constraint/substructure.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"

namespace granmine {
namespace {

class EventStructureTest : public testing::Test {
 protected:
  EventStructureTest() : system_(GranularitySystem::GregorianDays()) {}
  const Granularity* Get(const char* name) { return system_->Find(name); }
  std::unique_ptr<GranularitySystem> system_;
};

TEST_F(EventStructureTest, BuildAndQuery) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 5, Get("b-day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("week"))).ok());
  EXPECT_EQ(s.variable_count(), 2);
  EXPECT_EQ(s.variable_name(x0), "X0");
  ASSERT_EQ(s.edges().size(), 1u);  // same edge, conjunction of two TCGs
  EXPECT_EQ(s.edges()[0].tcgs.size(), 2u);
  const std::vector<Tcg>* tcgs = s.FindEdge(x0, x1);
  ASSERT_NE(tcgs, nullptr);
  EXPECT_EQ(tcgs->size(), 2u);
  EXPECT_EQ(s.FindEdge(x1, x0), nullptr);
  EXPECT_EQ(s.Granularities().size(), 2u);
}

TEST_F(EventStructureTest, RejectsBadConstraints) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  EXPECT_FALSE(s.AddConstraint(x0, x0, Tcg::Same(Get("day"))).ok());
  EXPECT_FALSE(s.AddConstraint(x0, 99, Tcg::Same(Get("day"))).ok());
  EXPECT_FALSE(s.AddConstraint(x0, x1, Tcg::Of(5, 2, Get("day"))).ok());
  EXPECT_FALSE(s.AddConstraint(x0, x1, Tcg::Of(-1, 2, Get("day"))).ok());
  EXPECT_FALSE(s.AddConstraint(x0, x1, Tcg{0, 0, nullptr}).ok());
}

TEST_F(EventStructureTest, DagValidation) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Same(Get("day"))).ok());
  EXPECT_TRUE(s.ValidateDag().ok());
  ASSERT_TRUE(s.AddConstraint(x2, x0, Tcg::Same(Get("day"))).ok());
  EXPECT_FALSE(s.ValidateDag().ok());
  EXPECT_FALSE(s.TopologicalOrder().ok());
}

TEST_F(EventStructureTest, TopologicalOrderIsValid) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  VariableId x3 = s.AddVariable("X3");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x0, x2, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x3, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x2, x3, Tcg::Same(Get("day"))).ok());
  auto order = s.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[(*order)[i]] = i;
  for (const EventStructure::Edge& edge : s.edges()) {
    EXPECT_LT(position[edge.from], position[edge.to]);
  }
}

TEST_F(EventStructureTest, RootDetection) {
  auto seconds = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*seconds);
  ASSERT_TRUE(fig1a.ok());
  auto root = fig1a->FindRoot();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, 0);  // X0 reaches everything

  // A diamond missing the top is unrooted.
  EventStructure s;
  VariableId a = s.AddVariable("A");
  VariableId b = s.AddVariable("B");
  VariableId c = s.AddVariable("C");
  ASSERT_TRUE(s.AddConstraint(a, c, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(b, c, Tcg::Same(Get("day"))).ok());
  EXPECT_FALSE(s.FindRoot().ok());
}

TEST_F(EventStructureTest, ReachabilityMatrix) {
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Same(Get("day"))).ok());
  ASSERT_TRUE(s.AddConstraint(x1, x2, Tcg::Same(Get("day"))).ok());
  auto reach = s.ReachabilityMatrix();
  EXPECT_TRUE(reach[x0][x2]);
  EXPECT_TRUE(reach[x0][x0]);
  EXPECT_FALSE(reach[x2][x0]);
}

TEST_F(EventStructureTest, InducedSubstructureOfFigure1a) {
  // §5.1's worked example: the subset {X0, X3} of Figure 1(a) cannot be an
  // exact induced sub-structure, but the *approximated* one carries derived
  // week (and hour) constraints on (X0, X3).
  auto seconds = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*seconds);
  ASSERT_TRUE(fig1a.ok());
  ConstraintPropagator propagator(&seconds->tables(), &seconds->coverage());
  auto prop = propagator.Propagate(*fig1a);
  ASSERT_TRUE(prop.ok());
  auto sub = InduceSubstructure(*fig1a, *prop, {0, 3});
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->variable_count(), 2);
  const std::vector<Tcg>* tcgs = sub->FindEdge(0, 1);
  ASSERT_NE(tcgs, nullptr);
  bool has_week = false;
  for (const Tcg& tcg : *tcgs) {
    if (tcg.granularity == seconds->Find("week")) {
      has_week = true;
      EXPECT_EQ(tcg.min, 0);
      // [0,2]week, not the paper's informally quoted [0,1] — see
      // propagation_test.cc and EXPERIMENTS.md E7.
      EXPECT_EQ(tcg.max, 2);
    }
  }
  EXPECT_TRUE(has_week);
  // No edge in the reverse direction (no path X3 -> X0).
  EXPECT_EQ(sub->FindEdge(1, 0), nullptr);
}

TEST_F(EventStructureTest, SubstructureRejectsBadInput) {
  auto fig1a = BuildFigure1a(*GranularitySystem::Gregorian());
  ASSERT_TRUE(fig1a.ok());
  PropagationResult fake;  // defaulted: consistent, no granularities
  EXPECT_FALSE(InduceSubstructure(*fig1a, fake, {0, 99}).ok());
  fake.consistent = false;
  EXPECT_FALSE(InduceSubstructure(*fig1a, fake, {0, 1}).ok());
}

TEST_F(EventStructureTest, ToStringMentionsEverything) {
  auto seconds = GranularitySystem::Gregorian();
  auto fig1a = BuildFigure1a(*seconds);
  ASSERT_TRUE(fig1a.ok());
  std::string repr = fig1a->ToString();
  EXPECT_NE(repr.find("X0"), std::string::npos);
  EXPECT_NE(repr.find("[0,5]b-day"), std::string::npos);
  EXPECT_NE(repr.find("[0,1]week"), std::string::npos);
}

}  // namespace
}  // namespace granmine
