// Deadline / cancellation / fault-injection coverage for the governor
// substrate: ResourceGovernor + GovernorTicket semantics, three-valued
// matcher and exact-checker verdicts, and deterministic partial mining
// reports under injected faults (byte-identical across runs and across
// thread counts; see docs/robustness.md).

#include "granmine/common/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/constraint/subset_sum.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

// ---------------------------------------------------------------------------
// Governor / ticket / injector unit tests.

TEST(GovernorTest, UnlimitedGovernorNeverTrips) {
  ResourceGovernor governor;
  GovernorTicket ticket(&governor, GovernorScope::kGeneral);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(ticket.Charge(i), StopCause::kNone);
  }
  EXPECT_FALSE(governor.stopped());
  EXPECT_EQ(governor.cause(), StopCause::kNone);
  EXPECT_GT(governor.steps(), 0u);  // batches were flushed
}

TEST(GovernorTest, DetachedTicketIsFree) {
  GovernorTicket detached;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(detached.Charge(i), StopCause::kNone);
  }
}

TEST(GovernorTest, StepBudgetTripsOnceAndSticks) {
  GovernorLimits limits;
  limits.max_steps = 10;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  GovernorTicket ticket(&governor, GovernorScope::kGeneral);
  std::uint64_t tripped_at = 0;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    if (ticket.Charge(i) == StopCause::kStepBudget) {
      tripped_at = i;
      break;
    }
  }
  EXPECT_EQ(tripped_at, 11u);  // the 11th step exceeds a budget of 10
  EXPECT_TRUE(governor.stopped());
  EXPECT_EQ(governor.cause(), StopCause::kStepBudget);
  // Sticky: every later check reports the first cause.
  EXPECT_EQ(ticket.Charge(12), StopCause::kStepBudget);
  GovernorTicket other(&governor, GovernorScope::kMatch);
  EXPECT_EQ(other.Charge(0), StopCause::kStepBudget);
}

TEST(GovernorTest, DeadlineTrips) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  GovernorTicket ticket(&governor, GovernorScope::kGeneral);
  EXPECT_EQ(ticket.Charge(0), StopCause::kDeadline);
  EXPECT_TRUE(governor.stopped());
  EXPECT_TRUE(governor.stop_flag().load());
}

TEST(GovernorTest, RequestCancelWinsTheRace) {
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  GovernorTicket ticket(&governor, GovernorScope::kMine);
  EXPECT_EQ(ticket.Charge(0), StopCause::kCancelled);
  EXPECT_EQ(governor.cause(), StopCause::kCancelled);
  // A later would-be cause does not overwrite the first one.
  governor.RequestCancel();
  EXPECT_EQ(governor.cause(), StopCause::kCancelled);
}

TEST(GovernorTest, StrideBatchesSlowPathChecks) {
  GovernorLimits limits;
  limits.check_stride = 4;
  ResourceGovernor governor(limits);
  FaultInjector injector(GovernorScope::kGeneral, /*trip_index=*/1'000'000);
  governor.InstallFaultInjector(&injector);
  GovernorTicket ticket(&governor, GovernorScope::kGeneral);
  for (std::uint64_t i = 0; i < 3; ++i) ticket.Charge(i);
  EXPECT_EQ(injector.checks_observed(), 0u);  // still on the cheap path
  ticket.Charge(3);
  EXPECT_EQ(injector.checks_observed(), 1u);
  EXPECT_EQ(governor.steps(), 4u);  // the whole batch was flushed at once
}

TEST(GovernorTest, InjectorScopeAndIndexGateTrips) {
  FaultInjector injector(GovernorScope::kMatch, /*trip_index=*/5);
  EXPECT_FALSE(injector.ShouldTrip(GovernorScope::kMine, 7));   // wrong scope
  EXPECT_FALSE(injector.ShouldTrip(GovernorScope::kMatch, 4));  // early
  EXPECT_TRUE(injector.ShouldTrip(GovernorScope::kMatch, 5));
  EXPECT_TRUE(injector.ShouldTrip(GovernorScope::kMatch, 9));
  EXPECT_EQ(injector.checks_observed(), 4u);
  EXPECT_EQ(injector.trips_fired(), 2u);
}

TEST(GovernorTest, LocalInjectionLeavesTheSharedFlagAlone) {
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  FaultInjector injector(GovernorScope::kMine, 0, /*cancel_globally=*/false);
  governor.InstallFaultInjector(&injector);
  GovernorTicket ticket(&governor, GovernorScope::kMine);
  EXPECT_EQ(ticket.Charge(0), StopCause::kFaultInjected);
  EXPECT_FALSE(governor.stopped());  // the fault stayed local

  ResourceGovernor global_governor(limits);
  FaultInjector global(GovernorScope::kMine, 0, /*cancel_globally=*/true);
  global_governor.InstallFaultInjector(&global);
  GovernorTicket global_ticket(&global_governor, GovernorScope::kMine);
  EXPECT_EQ(global_ticket.Charge(0), StopCause::kFaultInjected);
  EXPECT_TRUE(global_governor.stopped());
  EXPECT_EQ(global_governor.cause(), StopCause::kFaultInjected);
}

TEST(GovernorTest, StopCauseNamesAndStatuses) {
  EXPECT_EQ(StopCauseToString(StopCause::kNone), "none");
  EXPECT_EQ(StopCauseToString(StopCause::kDeadline), "deadline");
  EXPECT_EQ(StopCauseToString(StopCause::kStepBudget), "step-budget");
  EXPECT_EQ(StopCauseToString(StopCause::kCancelled), "cancelled");
  EXPECT_EQ(StopCauseToString(StopCause::kFaultInjected), "fault-injected");
  EXPECT_EQ(StopCauseToStatus(StopCause::kDeadline, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StopCauseToStatus(StopCause::kStepBudget, "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StopCauseToStatus(StopCause::kCancelled, "x").code(),
            StatusCode::kCancelled);
  EXPECT_EQ(StopCauseToStatus(StopCause::kFaultInjected, "x").code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Three-valued matcher verdicts.

class MatcherGovernorTest : public testing::Test {
 protected:
  MatcherGovernorTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = chain_.AddVariable("X0");
    VariableId x1 = chain_.AddVariable("X1");
    VariableId x2 = chain_.AddVariable("X2");
    EXPECT_TRUE(chain_.AddConstraint(x0, x1, Tcg::Of(0, 3, unit_)).ok());
    EXPECT_TRUE(chain_.AddConstraint(x1, x2, Tcg::Of(0, 3, unit_)).ok());
    auto built = BuildTagForStructure(chain_);
    EXPECT_TRUE(built.ok());
    skeleton_ = *std::move(built);
    for (int i = 0; i < 12; ++i) {
      seq_.Add(/*type=*/i % 3, /*time=*/i);
    }
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure chain_;
  TagBuildResult skeleton_;
  EventSequence seq_;
};

TEST_F(MatcherGovernorTest, BudgetExhaustionIsUnknownNotRejected) {
  TagMatcher matcher(&skeleton_.tag);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2}, 3);
  MatchStats stats;
  ASSERT_EQ(matcher.Run(seq_.View(), symbols, {}, &stats),
            MatchOutcome::kAccepted);
  EXPECT_EQ(stats.stopped, StopCause::kNone);

  // A budget of one configuration cannot decide this instance.
  MatchOptions strangled;
  strangled.max_configurations = 1;
  EXPECT_EQ(matcher.Run(seq_.View(), symbols, strangled, &stats),
            MatchOutcome::kUnknown);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.stopped, StopCause::kStepBudget);
  // The legacy boolean view folds unknown into false — by contract.
  EXPECT_FALSE(matcher.Accepts(seq_.View(), symbols, strangled, &stats));
}

TEST_F(MatcherGovernorTest, GovernorTripYieldsUnknownWithCause) {
  TagMatcher matcher(&skeleton_.tag);
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2}, 3);
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  FaultInjector injector(GovernorScope::kMatch, /*trip_index=*/0);
  governor.InstallFaultInjector(&injector);
  MatchOptions options;
  options.governor = &governor;
  MatchStats stats;
  EXPECT_EQ(matcher.Run(seq_.View(), symbols, options, &stats),
            MatchOutcome::kUnknown);
  EXPECT_EQ(stats.stopped, StopCause::kFaultInjected);
  EXPECT_FALSE(stats.budget_exhausted);

  ResourceGovernor cancelled(limits);
  cancelled.RequestCancel();
  options.governor = &cancelled;
  EXPECT_EQ(matcher.Run(seq_.View(), symbols, options, &stats),
            MatchOutcome::kUnknown);
  EXPECT_EQ(stats.stopped, StopCause::kCancelled);
}

// ---------------------------------------------------------------------------
// Exact checker: injection sweep with run-to-run determinism.

class ExactGovernorTest : public testing::Test {
 protected:
  ExactGovernorTest() {
    unit_ = toy_.AddUniform("unit", 1);
    three_ = toy_.AddUniform("three", 3);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    VariableId x3 = s_.AddVariable("X3");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 5, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 5, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x2, x3, Tcg::Of(1, 2, three_)).ok());
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  const Granularity* three_;
  EventStructure s_;
};

TEST_F(ExactGovernorTest, InjectionSweepIsDeterministic) {
  ExactConsistencyChecker baseline_checker(&toy_.tables(), &toy_.coverage());
  auto baseline = baseline_checker.Check(s_);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(baseline->decided());
  ASSERT_TRUE(baseline->consistent);
  ASSERT_GT(baseline->nodes_explored, 4u);

  const std::uint64_t sweep_end = baseline->nodes_explored + 5;
  for (std::uint64_t trip = 1; trip <= sweep_end && trip <= 40; ++trip) {
    ExactResult results[2];
    for (int run = 0; run < 2; ++run) {
      GovernorLimits limits;
      limits.check_stride = 1;
      ResourceGovernor governor(limits);
      FaultInjector injector(GovernorScope::kExactSearch, trip);
      governor.InstallFaultInjector(&injector);
      ExactOptions options;
      options.governor = &governor;
      ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(),
                                      options);
      auto result = checker.Check(s_);
      ASSERT_TRUE(result.ok()) << result.status();
      results[run] = *std::move(result);
    }
    // Byte-identical across the two runs.
    EXPECT_EQ(results[0].nodes_explored, results[1].nodes_explored);
    EXPECT_EQ(results[0].candidates_generated, results[1].candidates_generated);
    EXPECT_EQ(results[0].stopped, results[1].stopped);
    EXPECT_EQ(results[0].consistent, results[1].consistent);
    EXPECT_EQ(results[0].witness, results[1].witness);
    if (trip <= baseline->nodes_explored) {
      // The search charges once per node, so tripping within the baseline's
      // node count must interrupt it: a three-valued *unknown*.
      EXPECT_FALSE(results[0].decided());
      EXPECT_EQ(results[0].stopped, StopCause::kFaultInjected);
    } else {
      EXPECT_TRUE(results[0].decided());
      EXPECT_EQ(results[0].consistent, baseline->consistent);
      EXPECT_EQ(results[0].nodes_explored, baseline->nodes_explored);
    }
  }
}

TEST_F(ExactGovernorTest, CancelledSearchIsUndecidedNotInconsistent) {
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  ExactOptions options;
  options.governor = &governor;
  ExactConsistencyChecker checker(&toy_.tables(), &toy_.coverage(), options);
  auto result = checker.Check(s_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->decided());
  EXPECT_EQ(result->stopped, StopCause::kCancelled);
}

TEST(SubsetSumGovernorTest, InterruptedSolveNeverClaimsNoSubset) {
  auto system = GranularitySystem::Gregorian();
  const Granularity* month = system->Find("month");
  ASSERT_NE(month, nullptr);
  SubsetSumInstance instance;
  instance.numbers = {2, 3, 5};
  instance.target = 8;

  auto solved = SolveSubsetSum(system.get(), month, instance, ExactOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  ASSERT_TRUE(solved->has_value());

  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  ExactOptions options;
  options.governor = &governor;
  auto interrupted = SolveSubsetSum(system.get(), month, instance, options);
  // Not "no subset" (that would be a silent wrong answer) — an error.
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);
}

TEST(PropagationGovernorTest, EarlyStopIsSoundAndMarked) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  ASSERT_TRUE(s.AddConstraint(x0, x1, Tcg::Of(0, 3, unit)).ok());

  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  PropagationOptions options;
  options.governor = &governor;
  ConstraintPropagator propagator(&toy.tables(), &toy.coverage(), options);
  auto result = propagator.Propagate(s);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stopped, StopCause::kCancelled);
  // Early-stopped propagation must never refute.
  EXPECT_TRUE(result->consistent);
}

// ---------------------------------------------------------------------------
// Miner: deterministic fault-injection sweeps and graceful partial reports.

// Serializes everything observable about a report; byte equality of these
// strings is the determinism criterion of the injection sweeps.
std::string FormatReport(const MiningReport& report) {
  std::string out;
  char buffer[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(buffer, sizeof(buffer), format, args...);
    out += buffer;
  };
  append("roots=%zu events=%zu/%zu cand=%llu/%llu runs=%llu configs=%llu\n",
         report.total_roots, report.events_before,
         report.events_after_reduction,
         static_cast<unsigned long long>(report.candidates_before),
         static_cast<unsigned long long>(report.candidates_after_screening),
         static_cast<unsigned long long>(report.tag_runs),
         static_cast<unsigned long long>(report.matcher_configurations));
  const MiningCompleteness& c = report.completeness;
  append("complete=%d stop=%d confirmed=%llu refuted=%llu unknown=%llu "
         "not_evaluated=%llu\n",
         c.complete ? 1 : 0, static_cast<int>(c.stop),
         static_cast<unsigned long long>(c.confirmed),
         static_cast<unsigned long long>(c.refuted),
         static_cast<unsigned long long>(c.unknown),
         static_cast<unsigned long long>(c.not_evaluated));
  for (const DiscoveredType& solution : report.solutions) {
    out += "sol";
    for (EventTypeId type : solution.assignment) {
      append(" %d", type);
    }
    append(" matched=%zu freq=%.17g\n", solution.matched_roots,
           solution.frequency);
  }
  for (const UnknownCandidate& unknown : report.unknown_sample) {
    out += "unk";
    for (EventTypeId type : unknown.assignment) {
      append(" %d", type);
    }
    append(" reason=%d\n", static_cast<int>(unknown.reason));
  }
  return out;
}

class MinerGovernorTest : public testing::Test {
 protected:
  static constexpr int kTypeCount = 6;

  MinerGovernorTest() {
    unit_ = toy_.AddUniform("unit", 1);
    VariableId x0 = s_.AddVariable("X0");
    VariableId x1 = s_.AddVariable("X1");
    VariableId x2 = s_.AddVariable("X2");
    EXPECT_TRUE(s_.AddConstraint(x0, x1, Tcg::Of(0, 8, unit_)).ok());
    EXPECT_TRUE(s_.AddConstraint(x1, x2, Tcg::Of(0, 8, unit_)).ok());
    // A small deterministic pseudo-random sequence over kTypeCount types,
    // dense enough that matcher runs build many configurations (the kMatch
    // injection sweep needs non-trivial per-run configuration counts).
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    TimePoint t = 0;
    for (int i = 0; i < 48; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      t += 1 + static_cast<TimePoint>((state >> 33) % 2);
      seq_.Add(static_cast<EventTypeId>((state >> 13) % kTypeCount), t);
    }
    problem_.structure = &s_;
    problem_.reference_type = 0;
    problem_.min_confidence = 0.05;
    EXPECT_GT(seq_.CountOf(0), 0u);
  }

  MiningReport MineInjected(int threads, GovernorScope scope,
                            std::uint64_t trip, bool cancel_globally) {
    MinerOptions options;
    options.num_threads = threads;
    options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    Miner miner(&toy_, options);
    GovernorLimits limits;
    limits.check_stride = 1;
    ResourceGovernor governor(limits);
    FaultInjector injector(scope, trip, cancel_globally);
    governor.InstallFaultInjector(&injector);
    auto report = miner.Mine(problem_, seq_, &governor);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? *std::move(report) : MiningReport{};
  }

  static void CheckInvariant(const MiningReport& report) {
    const MiningCompleteness& c = report.completeness;
    EXPECT_EQ(c.confirmed + c.refuted + c.unknown + c.not_evaluated,
              report.candidates_after_screening);
    EXPECT_EQ(c.complete, c.unknown == 0 && c.not_evaluated == 0);
    if (!c.complete) {
      EXPECT_NE(c.stop, StopCause::kNone);
    }
    EXPECT_LE(report.unknown_sample.size(), kUnknownSampleCap);
    EXPECT_LE(report.unknown_sample.size(), c.unknown);
  }

  GranularitySystem toy_;
  const Granularity* unit_;
  EventStructure s_;
  EventSequence seq_;
  DiscoveryProblem problem_;
};

TEST_F(MinerGovernorTest, MineScopeSweepIsByteIdenticalAcrossThreadCounts) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->completeness.complete);
  const std::uint64_t total = full->candidates_after_screening;
  ASSERT_GE(total, 25u);  // the sweep needs a real candidate space

  for (std::uint64_t trip = 0; trip <= total + 2; ++trip) {
    MiningReport serial =
        MineInjected(1, GovernorScope::kMine, trip, /*cancel_globally=*/false);
    MiningReport serial_again =
        MineInjected(1, GovernorScope::kMine, trip, /*cancel_globally=*/false);
    MiningReport parallel =
        MineInjected(4, GovernorScope::kMine, trip, /*cancel_globally=*/false);
    CheckInvariant(serial);
    CheckInvariant(parallel);
    const std::string expected = FormatReport(serial);
    ASSERT_EQ(expected, FormatReport(serial_again)) << "trip=" << trip;
    ASSERT_EQ(expected, FormatReport(parallel)) << "trip=" << trip;
    if (trip >= total) {
      EXPECT_TRUE(serial.completeness.complete) << "trip=" << trip;
      EXPECT_EQ(expected, FormatReport(*full));
    } else {
      // A kMine injection fails exactly the candidates at index >= trip.
      EXPECT_EQ(serial.completeness.unknown, total - trip);
      EXPECT_EQ(serial.completeness.confirmed + serial.completeness.refuted,
                trip);
      EXPECT_EQ(serial.completeness.stop, StopCause::kFaultInjected);
    }
  }
}

TEST_F(MinerGovernorTest, MatchScopeSweepIsByteIdenticalAcrossThreadCounts) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok()) << full.status();
  int interrupted_points = 0;
  for (std::uint64_t trip = 0; trip <= 60; trip += 1) {
    MiningReport serial =
        MineInjected(1, GovernorScope::kMatch, trip, /*cancel_globally=*/false);
    MiningReport parallel =
        MineInjected(4, GovernorScope::kMatch, trip, /*cancel_globally=*/false);
    CheckInvariant(serial);
    CheckInvariant(parallel);
    ASSERT_EQ(FormatReport(serial), FormatReport(parallel)) << "trip=" << trip;
    if (serial.completeness.unknown > 0) {
      ++interrupted_points;
      EXPECT_EQ(serial.completeness.stop, StopCause::kFaultInjected);
      for (const UnknownCandidate& unknown : serial.unknown_sample) {
        EXPECT_EQ(unknown.reason, StopCause::kFaultInjected);
      }
      // Partial solutions are a subset of the full run's solutions.
      for (const DiscoveredType& solution : serial.solutions) {
        bool found = false;
        for (const DiscoveredType& reference : full->solutions) {
          if (reference.assignment == solution.assignment) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
  // Low trip indices interrupt matcher runs; the sweep must hit real faults.
  EXPECT_GT(interrupted_points, 5);
}

TEST_F(MinerGovernorTest, GlobalCancellationSweepKeepsInvariants) {
  Miner plain(&toy_);
  auto full = plain.Mine(problem_, seq_);
  ASSERT_TRUE(full.ok());
  const std::uint64_t total = full->candidates_after_screening;
  for (std::uint64_t trip = 0; trip < total; trip += 3) {
    MiningReport report =
        MineInjected(4, GovernorScope::kMine, trip, /*cancel_globally=*/true);
    CheckInvariant(report);
    EXPECT_FALSE(report.completeness.complete);
    EXPECT_EQ(report.completeness.stop, StopCause::kFaultInjected);
    // Global cancellation forfeits work (chunks past the trip index can set
    // the shared flag before earlier chunks run), but never silently: the
    // forfeited candidates are all accounted for as not_evaluated.
    EXPECT_GT(report.completeness.not_evaluated + report.completeness.unknown,
              0u);
  }
}

TEST_F(MinerGovernorTest, ExpiredDeadlineYieldsAllNotEvaluated) {
  MinerOptions options;
  options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  Miner miner(&toy_, options);
  GovernorLimits limits;
  limits.deadline_ms = 1;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto report = miner.Mine(problem_, seq_, &governor);
  ASSERT_TRUE(report.ok()) << report.status();
  CheckInvariant(*report);
  EXPECT_FALSE(report->completeness.complete);
  EXPECT_EQ(report->completeness.stop, StopCause::kDeadline);
  EXPECT_EQ(report->completeness.not_evaluated,
            report->candidates_after_screening);
  EXPECT_TRUE(report->solutions.empty());
}

TEST_F(MinerGovernorTest, AbortPolicySurfacesTheCauseAsAnError) {
  GovernorLimits limits;
  limits.check_stride = 1;
  {
    ResourceGovernor governor(limits);
    governor.RequestCancel();
    Miner miner(&toy_);  // kAbort is the default policy
    auto report = miner.Mine(problem_, seq_, &governor);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  }
  {
    ResourceGovernor governor(limits);
    FaultInjector injector(GovernorScope::kMine, 3);
    governor.InstallFaultInjector(&injector);
    Miner miner(&toy_);
    auto report = miner.Mine(problem_, seq_, &governor);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST_F(MinerGovernorTest, CancellationBeforePartialMiningLosesNothingSilently) {
  MinerOptions options;
  options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  options.num_threads = 4;
  Miner miner(&toy_, options);
  GovernorLimits limits;
  limits.check_stride = 1;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  auto report = miner.Mine(problem_, seq_, &governor);
  ASSERT_TRUE(report.ok()) << report.status();
  CheckInvariant(*report);
  EXPECT_EQ(report->completeness.stop, StopCause::kCancelled);
  EXPECT_EQ(report->completeness.not_evaluated,
            report->candidates_after_screening);
}

TEST_F(MinerGovernorTest, MatcherBudgetDegradesToUnknownUnderPartialPolicy) {
  MinerOptions options;
  options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  options.max_configurations_per_run = 1;
  Miner miner(&toy_, options);
  auto report = miner.Mine(problem_, seq_);
  ASSERT_TRUE(report.ok()) << report.status();
  CheckInvariant(*report);
  EXPECT_FALSE(report->completeness.complete);
  EXPECT_GT(report->completeness.unknown, 0u);
  EXPECT_EQ(report->completeness.stop, StopCause::kStepBudget);
  for (const UnknownCandidate& unknown : report->unknown_sample) {
    EXPECT_EQ(unknown.reason, StopCause::kStepBudget);
  }

  // The same budget under the legacy abort policy is the historical error.
  MinerOptions abort_options;
  abort_options.max_configurations_per_run = 1;
  Miner abort_miner(&toy_, abort_options);
  auto aborted = abort_miner.Mine(problem_, seq_);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(MinerGovernorTest, CandidateCapClampsInsteadOfAbortingUnderPartial) {
  MinerOptions options;
  options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  options.max_candidates = 5;
  Miner miner(&toy_, options);
  auto report = miner.Mine(problem_, seq_);
  ASSERT_TRUE(report.ok()) << report.status();
  CheckInvariant(*report);
  EXPECT_FALSE(report->completeness.complete);
  EXPECT_EQ(report->completeness.stop, StopCause::kStepBudget);
  EXPECT_EQ(report->completeness.confirmed + report->completeness.refuted, 5u);
  EXPECT_EQ(report->completeness.not_evaluated,
            report->candidates_after_screening - 5);
}

}  // namespace
}  // namespace granmine
