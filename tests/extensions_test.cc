#include "granmine/mining/extensions.h"

#include <gtest/gtest.h>

#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

TEST(BoundaryEventsTest, InjectsOnePerTick) {
  auto system = GranularitySystem::GregorianDays();
  const Granularity& week = *system->Find("week");
  EventSequence seq;
  seq.Add(0, 0);    // Thu week 1
  seq.Add(0, 20);   // week 4 (days 18..24)
  EventSequence copy = seq;
  std::size_t added = InjectBoundaryEvents(week, 9, &copy);
  // Weeks 1..4 intersect [0, 20].
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(copy.CountOf(9), 4u);
  // The first boundary is clamped into the observed range.
  EXPECT_EQ(copy.events().front().time, 0);
  // Later boundaries sit at week starts: Mon day 4, 11, 18.
  std::vector<std::size_t> marks = copy.OccurrencesOf(9);
  EXPECT_EQ(copy.events()[marks[1]].time, 4);
  EXPECT_EQ(copy.events()[marks[2]].time, 11);
  EXPECT_EQ(copy.events()[marks[3]].time, 18);
}

TEST(BoundaryEventsTest, WhatHappensInMostWeeks) {
  // Maintenance runs every day at 06:00; discover that "in every week, a
  // maintenance-check happens within the week" via a week-boundary anchor.
  auto system = GranularitySystem::Gregorian();
  PlantWorkloadOptions options;
  options.days = 56;  // 8 weeks
  options.cascade_probability = 0.2;
  Workload workload = MakePlantWorkload(*system, options);
  EventTypeId week_start = workload.registry.Intern("week-start");
  std::size_t added = InjectBoundaryEvents(*system->Find("week"), week_start,
                                           &workload.sequence);
  ASSERT_GT(added, 5u);

  const Granularity* week = system->Find("week");
  EventStructure structure;
  VariableId x0 = structure.AddVariable("week-start");
  VariableId x1 = structure.AddVariable("weekly-event");
  ASSERT_TRUE(structure.AddConstraint(x0, x1, Tcg::Same(week)).ok());

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.9;
  problem.reference_type = week_start;

  Miner miner(system.get());
  auto report = miner.Mine(problem, workload.sequence);
  ASSERT_TRUE(report.ok()) << report.status();
  bool maintenance_weekly = false;
  for (const DiscoveredType& found : report->solutions) {
    if (found.assignment[1] ==
        *workload.registry.Find("maintenance-check")) {
      maintenance_weekly = true;
      EXPECT_GT(found.frequency, 0.9);
    }
  }
  EXPECT_TRUE(maintenance_weekly);
}

TEST(ReferenceSetTest, CombinedTypeAnchorsAllMembers) {
  EventTypeRegistry registry;
  EventTypeId a = registry.Intern("A");
  EventTypeId b = registry.Intern("B");
  EventTypeId c = registry.Intern("C");
  EventSequence seq;
  seq.Add(a, 10);
  seq.Add(b, 20);
  seq.Add(c, 30);
  seq.Add(a, 40);
  std::vector<EventTypeId> set = {a, b};
  EventTypeId combined =
      CombineReferenceTypes(set, "A-or-B", &registry, &seq);
  EXPECT_EQ(seq.CountOf(combined), 3u);  // two A's and one B
  // Copies share their originals' timestamps.
  for (std::size_t i : seq.OccurrencesOf(combined)) {
    TimePoint t = seq.events()[i].time;
    EXPECT_TRUE(t == 10 || t == 20 || t == 40);
  }
}

TEST(ReferenceSetTest, MiningOverAReferenceSet) {
  // Pattern: X follows either A or B within 3 units.
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventTypeRegistry registry;
  EventTypeId a = registry.Intern("A");
  EventTypeId b = registry.Intern("B");
  EventTypeId x = registry.Intern("X");
  EventSequence seq;
  for (int i = 0; i < 10; ++i) {
    TimePoint base = i * 20;
    seq.Add(i % 2 == 0 ? a : b, base);
    seq.Add(x, base + 2);
  }
  std::vector<EventTypeId> set = {a, b};
  EventTypeId combined = CombineReferenceTypes(set, "A|B", &registry, &seq);

  EventStructure structure;
  VariableId x0 = structure.AddVariable("anchor");
  VariableId x1 = structure.AddVariable("follower");
  ASSERT_TRUE(structure.AddConstraint(x0, x1, Tcg::Of(1, 3, unit)).ok());

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.9;
  problem.reference_type = combined;
  problem.allowed.assign(2, {});
  problem.allowed[1] = {x};

  Miner miner(&toy);
  auto report = miner.Mine(problem, seq);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->total_roots, 10u);  // every A and every B anchors
  ASSERT_EQ(report->solutions.size(), 1u);
  EXPECT_DOUBLE_EQ(report->solutions[0].frequency, 1.0);
}

TEST(TypeConstraintTest, SameAndDifferentTypeFiltering) {
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  // Root R, two followers within 5 units each.
  EventStructure structure;
  VariableId r = structure.AddVariable("R");
  VariableId y1 = structure.AddVariable("Y1");
  VariableId y2 = structure.AddVariable("Y2");
  ASSERT_TRUE(structure.AddConstraint(r, y1, Tcg::Of(1, 5, unit)).ok());
  ASSERT_TRUE(structure.AddConstraint(y1, y2, Tcg::Of(1, 5, unit)).ok());
  // Sequence: R at 0, then types 1 and 2 twice each within range.
  EventSequence seq;
  for (int i = 0; i < 8; ++i) {
    TimePoint base = i * 30;
    seq.Add(0, base);
    seq.Add(1, base + 2);
    seq.Add(2, base + 3);
    seq.Add(1, base + 4);
    seq.Add(2, base + 5);
  }
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.5;
  problem.reference_type = 0;
  problem.allowed.assign(3, {});
  problem.allowed[1] = {1, 2};
  problem.allowed[2] = {1, 2};

  Miner miner(&toy);
  auto unconstrained = miner.Mine(problem, seq);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_EQ(unconstrained->solutions.size(), 4u);  // all pairs occur

  problem.type_constraints = {
      {TypeConstraint::Kind::kSameType, y1, y2}};
  auto same = miner.Mine(problem, seq);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->solutions.size(), 2u);  // (1,1) and (2,2)
  for (const DiscoveredType& found : same->solutions) {
    EXPECT_EQ(found.assignment[1], found.assignment[2]);
  }

  problem.type_constraints = {
      {TypeConstraint::Kind::kDifferentType, y1, y2}};
  auto different = miner.Mine(problem, seq);
  ASSERT_TRUE(different.ok());
  EXPECT_EQ(different->solutions.size(), 2u);  // (1,2) and (2,1)
  for (const DiscoveredType& found : different->solutions) {
    EXPECT_NE(found.assignment[1], found.assignment[2]);
  }
}

TEST(TypeConstraintTest, RejectsUnknownVariables) {
  GranularitySystem toy;
  toy.AddUniform("unit", 1);
  EventStructure structure;
  structure.AddVariable("R");
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.type_constraints = {{TypeConstraint::Kind::kSameType, 0, 7}};
  EventSequence seq;
  seq.Add(0, 1);
  Miner miner(&toy);
  EXPECT_FALSE(miner.Mine(problem, seq).ok());
}

}  // namespace
}  // namespace granmine
