// The Engine facade: one object owning the frozen system, the shared
// executor, the governor factory and the obs handles. The key invariant is
// that routing through the facade changes no answers — Mine/Match/OpenStream
// are byte-identical to hand-wired Miner/TagMatcher/OnlineMiner calls on an
// unfrozen twin system.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

Workload MakeWorkload(const GranularitySystem& system, unsigned seed) {
  StockWorkloadOptions options;
  options.trading_days = 25;
  options.plant_probability = 0.6;
  options.noise_events_per_day = 1.0;
  options.seed = seed;
  return MakeStockWorkload(system, options);
}

TEST(EngineTest, CreateRejectsNullSystem) {
  auto engine = Engine::Create(nullptr);
  ASSERT_FALSE(engine.ok());
}

TEST(EngineTest, FreezeHappensOnFirstServeCall) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->frozen());
  // Build phase: the family is still extensible through system().
  EXPECT_NE((*engine)->system()->AddUniform("fortnight", 14 * kSecondsPerDay),
            nullptr);

  Workload workload = MakeWorkload(*(*engine)->system(), 99);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.4;
  problem.reference_type = *workload.registry.Find("IBM-rise");

  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  auto response = (*engine)->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE((*engine)->frozen());
  // Serve phase: the family is immutable now.
  EXPECT_EQ((*engine)->system()->AddUniform("late", 60), nullptr);
  EXPECT_FALSE((*engine)->system()->last_add_error().ok());
}

TEST(EngineTest, MineMatchesHandWiredMiner) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  auto twin = GranularitySystem::Gregorian();

  Workload workload = MakeWorkload(*(*engine)->system(), 4242);
  Workload twin_workload = MakeWorkload(*twin, 4242);
  auto structure = BuildFigure1a(*(*engine)->system());
  auto twin_structure = BuildFigure1a(*twin);
  ASSERT_TRUE(structure.ok());
  ASSERT_TRUE(twin_structure.ok());

  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  DiscoveryProblem twin_problem = problem;
  twin_problem.structure = &*twin_structure;
  twin_problem.reference_type = *twin_workload.registry.Find("IBM-rise");

  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  auto via_engine = (*engine)->Mine(request);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status();

  Miner miner(twin.get());
  auto direct = miner.Mine(twin_problem, twin_workload.sequence);
  ASSERT_TRUE(direct.ok()) << direct.status();

  const MiningReport& a = via_engine->report;
  const MiningReport& b = *direct;
  EXPECT_EQ(a.candidates_before, b.candidates_before);
  EXPECT_EQ(a.candidates_after_screening, b.candidates_after_screening);
  EXPECT_EQ(a.total_roots, b.total_roots);
  EXPECT_EQ(a.tag_runs, b.tag_runs);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].assignment, b.solutions[i].assignment);
    EXPECT_EQ(a.solutions[i].matched_roots, b.solutions[i].matched_roots);
    EXPECT_EQ(a.solutions[i].frequency, b.solutions[i].frequency);
  }
}

TEST(EngineTest, MatchAgreesWithDirectMatcher) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  Workload workload = MakeWorkload(*(*engine)->system(), 7);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());
  auto built = BuildTagForStructure(*structure);
  ASSERT_TRUE(built.ok());

  std::vector<EventTypeId> phi = {
      *workload.registry.Find("IBM-rise"),
      *workload.registry.Find("IBM-earnings-report"),
      *workload.registry.Find("HP-rise"),
      *workload.registry.Find("IBM-fall")};
  SymbolMap symbols =
      SymbolMap::FromAssignment(phi, workload.registry.size());
  TagMatcher matcher(&built->tag);

  for (std::size_t at : workload.sequence.OccurrencesOf(phi[0])) {
    MatchRequest request;
    request.tag = &built->tag;
    request.events = workload.sequence.SuffixFrom(at);
    request.symbols = &symbols;
    request.options.anchored = true;
    auto response = (*engine)->Match(request);
    ASSERT_TRUE(response.ok()) << response.status();
    MatchOptions direct_options;
    direct_options.anchored = true;
    EXPECT_EQ(response->outcome == MatchOutcome::kAccepted,
              matcher.Accepts(workload.sequence.SuffixFrom(at), symbols,
                              direct_options));
  }
}

TEST(EngineTest, OpenStreamSnapshotMatchesBatchMine) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  Workload workload = MakeWorkload(*(*engine)->system(), 555);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());

  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  // Streams need the non-root universe up front.
  problem.allowed.assign(
      static_cast<std::size_t>(structure->variable_count()), {});
  problem.allowed[1] = {*workload.registry.Find("IBM-earnings-report")};
  problem.allowed[2] = {*workload.registry.Find("HP-rise")};
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  StreamRequest request;
  request.problem = &problem;
  auto session = (*engine)->OpenStream(request);
  ASSERT_TRUE(session.ok()) << session.status();
  for (const Event& event : workload.sequence.events()) {
    ASSERT_TRUE(session->Ingest(event).ok());
  }
  session->Seal();
  auto snapshot = session->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  MineRequest batch;
  batch.problem = &problem;
  batch.sequence = &workload.sequence;
  batch.options = OnlineMinerOptions{}.BatchEquivalent();
  auto mined = (*engine)->Mine(batch);
  ASSERT_TRUE(mined.ok()) << mined.status();
  ASSERT_EQ(snapshot->solutions.size(), mined->report.solutions.size());
  for (std::size_t i = 0; i < snapshot->solutions.size(); ++i) {
    EXPECT_EQ(snapshot->solutions[i].assignment,
              mined->report.solutions[i].assignment);
    EXPECT_EQ(snapshot->solutions[i].matched_roots,
              mined->report.solutions[i].matched_roots);
  }
}

TEST(EngineTest, GovernorFactoryResolvesAgainstDefaults) {
  EngineOptions options;
  options.limits.deadline_ms = 50;
  auto engine = Engine::CreateGregorian(options);
  ASSERT_TRUE(engine.ok());
  // Engine default limits produce a governor.
  EXPECT_NE((*engine)->MakeGovernor(), nullptr);
  // An explicit all-zero override produces none.
  EXPECT_EQ((*engine)->MakeGovernor(GovernorLimits{}), nullptr);
  // A step budget alone is enough.
  GovernorLimits steps;
  steps.max_steps = 10;
  EXPECT_NE((*engine)->MakeGovernor(steps), nullptr);

  auto ungoverned = Engine::CreateGregorian();
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_EQ((*ungoverned)->MakeGovernor(), nullptr);
}

TEST(EngineTest, MineRequestValidation) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  MineRequest request;  // no problem, no sequence
  EXPECT_FALSE((*engine)->Mine(request).ok());
  MatchRequest match;  // no tag, no symbols
  EXPECT_FALSE((*engine)->Match(match).ok());
  StreamRequest stream;  // no problem
  EXPECT_FALSE((*engine)->OpenStream(stream).ok());
}

// Request validation and serving must hold up when Mine and OpenStream hit
// one engine from different threads: the first serve call freezes the
// system exactly once, valid requests on both paths succeed, and invalid
// ones keep failing loudly instead of racing into a half-built session.
TEST(EngineTest, ConcurrentMineAndOpenStreamValidate) {
  auto engine = Engine::CreateGregorian();
  ASSERT_TRUE(engine.ok());
  Workload workload = MakeWorkload(*(*engine)->system(), 808);
  auto structure = BuildFigure1a(*(*engine)->system());
  ASSERT_TRUE(structure.ok());

  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  DiscoveryProblem stream_problem = problem;
  stream_problem.allowed.assign(
      static_cast<std::size_t>(structure->variable_count()), {});
  stream_problem.allowed[1] = {*workload.registry.Find("IBM-earnings-report")};
  stream_problem.allowed[2] = {*workload.registry.Find("HP-rise")};
  stream_problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  std::atomic<int> mine_ok{0};
  std::atomic<int> invalid_rejected{0};
  std::thread miner_thread([&] {
    MineRequest request;
    request.problem = &problem;
    request.sequence = &workload.sequence;
    for (int i = 0; i < 3; ++i) {
      auto response = (*engine)->Mine(request);
      if (response.ok()) mine_ok.fetch_add(1);
      // Interleave invalid requests: validation must stay per-request.
      MineRequest invalid;
      if (!(*engine)->Mine(invalid).ok()) invalid_rejected.fetch_add(1);
    }
  });

  StreamRequest stream_request;
  stream_request.problem = &stream_problem;
  for (int i = 0; i < 3; ++i) {
    auto session = (*engine)->OpenStream(stream_request);
    ASSERT_TRUE(session.ok()) << session.status();
    for (const Event& event : workload.sequence.events()) {
      ASSERT_TRUE(session->Ingest(event).ok());
    }
    session->Seal();
    auto snapshot = session->Snapshot();
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    StreamRequest invalid;  // no problem
    EXPECT_FALSE((*engine)->OpenStream(invalid).ok());
  }
  miner_thread.join();
  EXPECT_EQ(mine_ok.load(), 3);
  EXPECT_EQ(invalid_rejected.load(), 3);
  EXPECT_TRUE((*engine)->frozen());
}

TEST(EngineTest, ParallelMineOnEnginePoolMatchesSerial) {
  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  auto parallel = Engine::CreateGregorian(parallel_options);
  auto serial = Engine::CreateGregorian();
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_NE((*parallel)->executor(), nullptr);
  ASSERT_EQ((*serial)->executor(), nullptr);

  Workload workload = MakeWorkload(*(*parallel)->system(), 1212);
  Workload serial_workload = MakeWorkload(*(*serial)->system(), 1212);
  auto structure = BuildFigure1a(*(*parallel)->system());
  auto serial_structure = BuildFigure1a(*(*serial)->system());
  ASSERT_TRUE(structure.ok());
  ASSERT_TRUE(serial_structure.ok());

  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = 0.3;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  DiscoveryProblem serial_problem = problem;
  serial_problem.structure = &*serial_structure;
  serial_problem.reference_type =
      *serial_workload.registry.Find("IBM-rise");

  MineRequest request;
  request.problem = &problem;
  request.sequence = &workload.sequence;
  MineRequest serial_request;
  serial_request.problem = &serial_problem;
  serial_request.sequence = &serial_workload.sequence;

  auto a = (*parallel)->Mine(request);
  auto b = (*serial)->Mine(serial_request);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->report.solutions.size(), b->report.solutions.size());
  for (std::size_t i = 0; i < a->report.solutions.size(); ++i) {
    EXPECT_EQ(a->report.solutions[i].assignment,
              b->report.solutions[i].assignment);
    EXPECT_EQ(a->report.solutions[i].matched_roots,
              b->report.solutions[i].matched_roots);
  }
  // The engine pool is reusable: a second request on the same engine works.
  auto again = (*parallel)->Mine(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->report.solutions.size(), a->report.solutions.size());
}

TEST(EngineTest, WriteMetricsAndTraceProduceFiles) {
  EngineOptions options;
  options.enable_metrics = true;
  options.enable_tracing = true;
  auto engine = Engine::CreateGregorian(options);
  ASSERT_TRUE(engine.ok());
  const std::string metrics_path =
      testing::TempDir() + "/engine_test_metrics.prom";
  const std::string trace_path =
      testing::TempDir() + "/engine_test_trace.json";
  EXPECT_TRUE((*engine)->WriteMetrics(metrics_path).ok());
  EXPECT_TRUE((*engine)->WriteTrace(trace_path).ok());
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream contents;
  contents << trace.rdbuf();
  EXPECT_NE(contents.str().find("traceEvents"), std::string::npos);
  EXPECT_FALSE((*engine)->WriteMetrics("/nonexistent-dir/x.prom").ok());
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace granmine
