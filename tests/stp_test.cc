#include "granmine/constraint/stp.h"

#include <gtest/gtest.h>

#include "granmine/common/random.h"

namespace granmine {
namespace {

TEST(StpTest, EmptyNetworkIsConsistent) {
  StpNetwork net(0);
  EXPECT_TRUE(net.PropagateToMinimal());
  StpNetwork net3(3);
  EXPECT_TRUE(net3.PropagateToMinimal());
  EXPECT_EQ(net3.GetBounds(0, 1), Bounds::Of(-kInfinity, kInfinity));
}

TEST(StpTest, ChainComposition) {
  StpNetwork net(3);
  net.Constrain(0, 1, Bounds::Of(1, 2));
  net.Constrain(1, 2, Bounds::Of(3, 4));
  ASSERT_TRUE(net.PropagateToMinimal());
  EXPECT_EQ(net.GetBounds(0, 2), Bounds::Of(4, 6));
  EXPECT_EQ(net.GetBounds(2, 0), Bounds::Of(-6, -4));
}

TEST(StpTest, IntersectionTightens) {
  StpNetwork net(2);
  net.Constrain(0, 1, Bounds::Of(0, 10));
  net.Constrain(0, 1, Bounds::Of(5, 20));
  ASSERT_TRUE(net.PropagateToMinimal());
  EXPECT_EQ(net.GetBounds(0, 1), Bounds::Of(5, 10));
}

TEST(StpTest, PathTightensDirectEdge) {
  // Direct edge [0, 100], but a path forces [7, 9].
  StpNetwork net(3);
  net.Constrain(0, 2, Bounds::Of(0, 100));
  net.Constrain(0, 1, Bounds::Of(3, 4));
  net.Constrain(1, 2, Bounds::Of(4, 5));
  ASSERT_TRUE(net.PropagateToMinimal());
  EXPECT_EQ(net.GetBounds(0, 2), Bounds::Of(7, 9));
}

TEST(StpTest, DetectsNegativeCycle) {
  StpNetwork net(3);
  net.Constrain(0, 1, Bounds::Of(1, 2));
  net.Constrain(1, 2, Bounds::Of(1, 2));
  net.Constrain(0, 2, Bounds::Of(0, 1));  // incompatible with >= 2 via path
  EXPECT_FALSE(net.PropagateToMinimal());
}

TEST(StpTest, ConsistentWithZeroWidthCycle) {
  StpNetwork net(3);
  net.Constrain(0, 1, Bounds::Of(5, 5));
  net.Constrain(1, 2, Bounds::Of(-2, -2));
  net.Constrain(0, 2, Bounds::Of(3, 3));
  EXPECT_TRUE(net.PropagateToMinimal());
  EXPECT_EQ(net.GetBounds(0, 2), Bounds::Of(3, 3));
}

TEST(StpTest, ChangedFlagTracksTightenings) {
  StpNetwork net(2);
  EXPECT_FALSE(net.ConsumeChangedFlag());
  net.Constrain(0, 1, Bounds::Of(0, 10));
  EXPECT_TRUE(net.ConsumeChangedFlag());
  EXPECT_FALSE(net.ConsumeChangedFlag());
  net.Constrain(0, 1, Bounds::Of(0, 20));  // looser: no change
  EXPECT_FALSE(net.ConsumeChangedFlag());
  net.Constrain(0, 1, Bounds::Of(0, 5));
  EXPECT_TRUE(net.ConsumeChangedFlag());
}

TEST(StpTest, MinimalNetworkMatchesBruteForce) {
  // Property: for random small networks over a bounded integer domain, the
  // minimal bounds equal the envelope of all solutions found by brute force.
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4;
    const std::int64_t domain = 6;  // variable values in [0, 5]
    StpNetwork net(n);
    struct RawConstraint {
      int x, y;
      std::int64_t lo, hi;
    };
    std::vector<RawConstraint> raw;
    int count = static_cast<int>(rng.Uniform(2, 5));
    for (int c = 0; c < count; ++c) {
      int x = static_cast<int>(rng.Uniform(0, n - 1));
      int y = static_cast<int>(rng.Uniform(0, n - 1));
      if (x == y) continue;
      std::int64_t lo = rng.Uniform(-4, 3);
      std::int64_t hi = lo + rng.Uniform(0, 4);
      raw.push_back({x, y, lo, hi});
      net.Constrain(x, y, Bounds::Of(lo, hi));
    }
    // Brute-force all assignments.
    std::vector<std::vector<std::int64_t>> solutions;
    std::vector<std::int64_t> values(n, 0);
    for (std::int64_t a = 0; a < domain; ++a) {
      for (std::int64_t b = 0; b < domain; ++b) {
        for (std::int64_t c = 0; c < domain; ++c) {
          for (std::int64_t d = 0; d < domain; ++d) {
            values = {a, b, c, d};
            bool ok = true;
            for (const RawConstraint& rc : raw) {
              std::int64_t diff = values[rc.y] - values[rc.x];
              if (diff < rc.lo || diff > rc.hi) {
                ok = false;
                break;
              }
            }
            if (ok) solutions.push_back(values);
          }
        }
      }
    }
    bool consistent = net.PropagateToMinimal();
    if (solutions.empty()) {
      // The brute-force domain is bounded, so emptiness does not always
      // imply true inconsistency — but net inconsistency implies emptiness.
      if (!consistent) continue;
      continue;
    }
    ASSERT_TRUE(consistent) << "trial " << trial;
    // Every solution must satisfy the minimal bounds (soundness).
    for (const auto& sol : solutions) {
      for (int x = 0; x < n; ++x) {
        for (int y = 0; y < n; ++y) {
          Bounds bounds = net.GetBounds(x, y);
          std::int64_t diff = sol[y] - sol[x];
          EXPECT_GE(diff, bounds.lo);
          EXPECT_LE(diff, bounds.hi);
        }
      }
    }
  }
}

TEST(StpTest, FiniteIntervalSumDecreasesUnderTightening) {
  StpNetwork net(3);
  net.Constrain(0, 1, Bounds::Of(0, 10));
  net.Constrain(1, 2, Bounds::Of(0, 10));
  net.Constrain(0, 2, Bounds::Of(0, 30));
  ASSERT_TRUE(net.PropagateToMinimal());
  std::int64_t before = net.FiniteIntervalSum();
  net.Constrain(0, 1, Bounds::Of(0, 4));
  ASSERT_TRUE(net.PropagateToMinimal());
  EXPECT_LT(net.FiniteIntervalSum(), before);
}

}  // namespace
}  // namespace granmine
